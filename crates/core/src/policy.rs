//! Workload-driven decision policy: the telemetry loop, closed.
//!
//! Before this module, the engine's routing and resource decisions were
//! scattered ad-hoc heuristics: BDD-vs-SQL routing lived in the planner
//! (`any_sql_only`), the degradation-ladder entry rung in
//! [`crate::checker`], admission shedding in [`crate::serve`], adaptive
//! ordering selection in [`crate::index::LogicalDatabase::build_index`],
//! and the BDD apply-cache size was a fixed constant. This module is the
//! single audited decision layer they now all route through — and the
//! place where those decisions are *fed back* from observed telemetry:
//!
//! * [`WorkloadProfile`] — a deterministic, persistable record of what the
//!   check workload actually did: per-relation column-access weights
//!   (from the executor's [`crate::index::LogicalDatabase::record_column_use`]
//!   stream), per-relation routing outcomes (how often checks reading the
//!   relation decided on the BDD vs. the SQL rung), manager op counts and
//!   peak node population ([`relcheck_bdd::ManagerStats`]), and plan-cache
//!   hit rates. Only monotone integer counters — no wall times — so the
//!   profile, and everything derived from it, is byte-deterministic.
//! * [`advise`] — the cost model: per-relation [`IndexAdvice`] (keep the
//!   BDD index, or route to SQL; which ordering candidate the recorded
//!   weights favour; predicted vs. observed costs) and per-constraint
//!   [`RoutePolicy`] (the ladder entry rung the advice implies).
//! * [`apply_advice`] — the auto mode: applies an [`Advice`] to a live
//!   [`Checker`] strictly through the epoch-bumping invalidation paths
//!   ([`Checker::mark_sql_only`], [`Checker::rebuild_index`]), so every
//!   cached plan and verdict that the advice could affect is retired and
//!   **no verdict can change** — only the path that decides it.
//!
//! The profile is persisted in the `--index-cache` directory with the same
//! atomic write-temp/fsync/rename + CRC framing as the store manifest;
//! corruption decodes to a typed error and the caller falls back to a cold
//! profile, never a panic.

use crate::checker::{CheckReport, Checker, Method};
use crate::error::{CoreError, Result};
use crate::telemetry::{PlanCacheMetrics, PolicyMetrics};
use relcheck_bdd::{decode_frame, encode_frame};
use relcheck_bdd::{order, DecodeError, OpKind, OP_KINDS};
use relcheck_logic::Formula;
use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Magic bytes of a persisted workload profile file.
pub const PROFILE_MAGIC: [u8; 4] = *b"RCWP";
/// Format version of the persisted profile frame.
pub const PROFILE_FORMAT: u32 = 1;
/// File name of the profile inside an `--index-cache` directory.
pub const PROFILE_FILE: &str = "workload.profile";

/// Default apply-cache slot count a manager gets with no recorded
/// workload — [`relcheck_bdd::BddManager::new`]'s own default.
pub const DEFAULT_CACHE_SLOTS: usize = 1 << 18;
/// Bounds on the workload-sized apply-cache (slots, power of two).
pub const MIN_CACHE_SLOTS: usize = 1 << 12;
/// Upper bound on the workload-sized apply-cache.
pub const MAX_CACHE_SLOTS: usize = 1 << 22;

/// One relation's recorded workload: a mix of monotone counters (check
/// routing, column weights) and latest-observation state (row count, index
/// node count).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationProfile {
    /// Row count at the last recording.
    pub rows: u64,
    /// Node count of the relation's BDD index at the last recording
    /// (0 = no index was materialized).
    pub index_nodes: u64,
    /// Per-column access weights, schema order (the
    /// [`crate::index::LogicalDatabase::record_column_use`] stream).
    pub weights: Vec<u64>,
    /// Checks reading this relation that decided on the BDD rung.
    pub bdd_checks: u64,
    /// Checks reading this relation that decided on the SQL or brute-force
    /// rung.
    pub sql_checks: u64,
}

/// A deterministic record of an observed check workload (see module docs).
///
/// All fields are integers: two profiles recorded from the same check
/// sequence are equal, and every artifact derived from a profile (the
/// advise report, the applied advice) is byte-deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Constraint checks folded into this profile.
    pub checks: u64,
    /// Peak live-node population of the BDD manager.
    pub peak_nodes: u64,
    /// Operation-cache hits across all BDD operations.
    pub cache_hits: u64,
    /// Operation-cache misses across all BDD operations.
    pub cache_misses: u64,
    /// Plan-cache hits (registry level).
    pub plan_hits: u64,
    /// Plan-cache misses (registry level).
    pub plan_misses: u64,
    /// Memoized call counts per BDD operation kind, [`OpKind::ALL`] order.
    pub op_calls: [u64; OP_KINDS],
    /// Per-relation profiles, keyed by relation name (sorted — the map is
    /// a `BTreeMap` precisely so encoding and reporting are
    /// deterministic).
    pub relations: BTreeMap<String, RelationProfile>,
}

impl WorkloadProfile {
    /// Record a profile from a live checker and the reports of the checks
    /// that ran on it. `constraints` pairs each report's name with its
    /// formula so routing outcomes can be attributed to the relations the
    /// constraint reads; reports with no matching constraint (or vice
    /// versa) simply contribute nothing.
    ///
    /// Manager counters are cumulative over the checker's lifetime, so
    /// record **once per process** and [`WorkloadProfile::merge`] into a
    /// profile persisted by earlier runs — merging two recordings taken
    /// from the same live checker would double-count.
    pub fn record(
        checker: &Checker,
        constraints: &[(String, Formula)],
        reports: &[(String, CheckReport)],
    ) -> WorkloadProfile {
        let ldb = checker.logical_db();
        let stats = ldb.manager().stats();
        let mut op_calls = [0u64; OP_KINDS];
        for (i, c) in op_calls.iter_mut().enumerate() {
            *c = stats.ops[i].calls;
        }
        let mut relations: BTreeMap<String, RelationProfile> = BTreeMap::new();
        let names: Vec<String> = ldb.db().relation_names().map(str::to_owned).collect();
        for name in &names {
            let rows = ldb.db().relation(name).map_or(0, |r| r.len() as u64);
            let index_nodes = ldb
                .index(name)
                .map_or(0, |idx| ldb.manager().size(idx.root) as u64);
            let weights = ldb
                .column_weights(name)
                .map_or_else(Vec::new, <[u64]>::to_vec);
            relations.insert(
                name.clone(),
                RelationProfile {
                    rows,
                    index_nodes,
                    weights,
                    bdd_checks: 0,
                    sql_checks: 0,
                },
            );
        }
        for (name, report) in reports {
            let Some((_, formula)) = constraints.iter().find(|(n, _)| n == name) else {
                continue;
            };
            let bucket = match report.method {
                Method::Bdd => 0,
                Method::SqlFallback | Method::BruteForce => 1,
                Method::Aborted => continue,
            };
            for rel in crate::parallel::read_set(formula) {
                let p = relations.entry(rel).or_default();
                if bucket == 0 {
                    p.bdd_checks += 1;
                } else {
                    p.sql_checks += 1;
                }
            }
        }
        WorkloadProfile {
            checks: reports.len() as u64,
            peak_nodes: stats.peak_nodes as u64,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            plan_hits: 0,
            plan_misses: 0,
            op_calls,
            relations,
        }
    }

    /// Fold registry plan-cache counters into the profile.
    pub fn note_plan_cache(&mut self, m: PlanCacheMetrics) {
        self.plan_hits = self.plan_hits.saturating_add(m.hits);
        self.plan_misses = self.plan_misses.saturating_add(m.misses);
    }

    /// Merge a newer recording into this profile: monotone counters add
    /// (saturating), peaks take the max, and latest-observation state
    /// (rows, index nodes) takes `newer`'s value when it observed one.
    pub fn merge(&mut self, newer: &WorkloadProfile) {
        self.checks = self.checks.saturating_add(newer.checks);
        self.peak_nodes = self.peak_nodes.max(newer.peak_nodes);
        self.cache_hits = self.cache_hits.saturating_add(newer.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(newer.cache_misses);
        self.plan_hits = self.plan_hits.saturating_add(newer.plan_hits);
        self.plan_misses = self.plan_misses.saturating_add(newer.plan_misses);
        for (a, b) in self.op_calls.iter_mut().zip(&newer.op_calls) {
            *a = a.saturating_add(*b);
        }
        for (name, theirs) in &newer.relations {
            let ours = self.relations.entry(name.clone()).or_default();
            ours.rows = theirs.rows;
            if theirs.index_nodes > 0 {
                ours.index_nodes = theirs.index_nodes;
            }
            if ours.weights.len() < theirs.weights.len() {
                ours.weights.resize(theirs.weights.len(), 0);
            }
            for (a, b) in ours.weights.iter_mut().zip(&theirs.weights) {
                *a = a.saturating_add(*b);
            }
            ours.bdd_checks = ours.bdd_checks.saturating_add(theirs.bdd_checks);
            ours.sql_checks = ours.sql_checks.saturating_add(theirs.sql_checks);
        }
    }

    /// The apply-cache slot count this workload justifies: roughly twice
    /// the observed peak live-node population, rounded up to a power of
    /// two and clamped to [[`MIN_CACHE_SLOTS`], [`MAX_CACHE_SLOTS`]]. With
    /// no recorded peak the fixed default stands.
    pub fn cache_slots(&self) -> usize {
        if self.peak_nodes == 0 {
            return DEFAULT_CACHE_SLOTS;
        }
        let want = (self.peak_nodes as usize).saturating_mul(2);
        want.next_power_of_two()
            .clamp(MIN_CACHE_SLOTS, MAX_CACHE_SLOTS)
    }

    /// Serialize into the checksummed [`encode_frame`] format used by the
    /// persistent index store. Deterministic: equal profiles encode to
    /// identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let w64 = |p: &mut Vec<u8>, v: u64| p.extend_from_slice(&v.to_le_bytes());
        let w32 = |p: &mut Vec<u8>, v: u32| p.extend_from_slice(&v.to_le_bytes());
        w64(&mut p, self.checks);
        w64(&mut p, self.peak_nodes);
        w64(&mut p, self.cache_hits);
        w64(&mut p, self.cache_misses);
        w64(&mut p, self.plan_hits);
        w64(&mut p, self.plan_misses);
        w32(&mut p, OP_KINDS as u32);
        for &c in &self.op_calls {
            w64(&mut p, c);
        }
        w32(&mut p, self.relations.len() as u32);
        for (name, r) in &self.relations {
            w32(&mut p, name.len() as u32);
            p.extend_from_slice(name.as_bytes());
            w64(&mut p, r.rows);
            w64(&mut p, r.index_nodes);
            w64(&mut p, r.bdd_checks);
            w64(&mut p, r.sql_checks);
            w32(&mut p, r.weights.len() as u32);
            for &w in &r.weights {
                w64(&mut p, w);
            }
        }
        encode_frame(PROFILE_MAGIC, PROFILE_FORMAT, &[], &p)
    }

    /// Decode a persisted profile. Truncation, bit flips, wrong file
    /// types, and structural lies all surface as
    /// [`CoreError::SnapshotDecode`] with the offending byte offset —
    /// never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<WorkloadProfile> {
        let (_, payload) = decode_frame(bytes, PROFILE_MAGIC, PROFILE_FORMAT)
            .map_err(CoreError::SnapshotDecode)?;
        let mut r = Reader {
            buf: payload,
            off: 0,
        };
        let checks = r.u64()?;
        let peak_nodes = r.u64()?;
        let cache_hits = r.u64()?;
        let cache_misses = r.u64()?;
        let plan_hits = r.u64()?;
        let plan_misses = r.u64()?;
        let nops = r.u32()? as usize;
        if nops != OP_KINDS {
            return r.fail("op-kind count disagrees with this build");
        }
        let mut op_calls = [0u64; OP_KINDS];
        for c in op_calls.iter_mut() {
            *c = r.u64()?;
        }
        let nrel = r.u32()? as usize;
        let mut relations = BTreeMap::new();
        for _ in 0..nrel {
            let name = r.string()?;
            let rows = r.u64()?;
            let index_nodes = r.u64()?;
            let bdd_checks = r.u64()?;
            let sql_checks = r.u64()?;
            let nweights = r.u32()? as usize;
            if nweights > payload.len() {
                return r.fail("weight count exceeds the payload");
            }
            let mut weights = Vec::with_capacity(nweights);
            for _ in 0..nweights {
                weights.push(r.u64()?);
            }
            if relations
                .insert(
                    name,
                    RelationProfile {
                        rows,
                        index_nodes,
                        weights,
                        bdd_checks,
                        sql_checks,
                    },
                )
                .is_some()
            {
                return r.fail("profile repeats a relation");
            }
        }
        if r.off != payload.len() {
            return r.fail("trailing bytes after the profile");
        }
        Ok(WorkloadProfile {
            checks,
            peak_nodes,
            cache_hits,
            cache_misses,
            plan_hits,
            plan_misses,
            op_calls,
            relations,
        })
    }

    /// Load the profile persisted in an index-cache directory. A missing
    /// file is `Ok(None)` (cold profile); unreadable or corrupt files are
    /// typed errors the caller reports and then proceeds cold from.
    pub fn load(dir: &Path) -> Result<Option<WorkloadProfile>> {
        let path = dir.join(PROFILE_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let bytes = fs::read(&path).map_err(|e| CoreError::Io {
            op: "read",
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        WorkloadProfile::from_bytes(&bytes).map(Some)
    }

    /// Persist the profile with the store's atomic discipline: write to a
    /// temp file, fsync, rename over the final path, fsync the directory.
    /// A crash at any point leaves either the old profile or the new one,
    /// never a torn file at the final path.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let io_err = |op: &'static str, path: &Path, e: std::io::Error| CoreError::Io {
            op,
            path: path.display().to_string(),
            message: e.to_string(),
        };
        fs::create_dir_all(dir).map_err(|e| io_err("create", dir, e))?;
        let final_path = dir.join(PROFILE_FILE);
        let tmp = dir.join(format!("{PROFILE_FILE}.tmp"));
        let bytes = self.to_bytes();
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)?;
            sync_dir(dir);
            Ok(())
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err("write", &final_path, e)
        })
    }
}

/// fsync a directory so a rename inside it is durable (best-effort — not
/// every platform supports opening directories).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Little-endian cursor over a profile payload with typed-error bounds
/// checks.
struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Reader<'_> {
    fn fail<T>(&self, reason: &'static str) -> Result<T> {
        Err(CoreError::SnapshotDecode(DecodeError {
            offset: self.off,
            reason,
        }))
    }

    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let Some(end) = self.off.checked_add(n) else {
            return self.fail("profile length overflows");
        };
        if end > self.buf.len() {
            return self.fail("profile payload truncated");
        }
        let s = &self.buf[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return self.fail("string length exceeds the payload");
        }
        let bytes = self.take(n)?.to_vec();
        match String::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(_) => self.fail("relation name is not UTF-8"),
        }
    }
}

// ---------------------------------------------------------------------------
// The routing rules themselves — the decisions formerly scattered across
// planner, checker, serve, and index now live (and are documented) here.
// ---------------------------------------------------------------------------

/// The planner's BDD-vs-SQL routing rule: a constraint may enter the
/// ladder at the BDD rung only if **no** relation it reads is marked
/// SQL-only — one over-budget relation sinks the whole BDD step, because a
/// partial compile would still need that relation's index.
pub fn bdd_route_allowed<'a, I>(reads: I, sql_only: &HashSet<String>) -> bool
where
    I: IntoIterator<Item = &'a str>,
{
    !reads.into_iter().any(|r| sql_only.contains(r))
}

/// The degradation-ladder entry rule: a shed check skips the BDD rungs and
/// enters at SQL — but only when the plan has a BDD step to skip (plans
/// already routed to SQL enter there regardless). Shedding never changes a
/// verdict, only the path that decides it.
pub fn shed_entry_skips_bdd(shed_load: bool, has_bdd_step: bool) -> bool {
    shed_load && has_bdd_step
}

/// The serve-layer admission rule: shed a request to the SQL tier when the
/// queue is more than half full or the previous request ran at or over the
/// shed threshold.
pub fn admission_should_shed(
    depth: usize,
    queue_depth: usize,
    last_latency: Duration,
    shed_threshold: Duration,
) -> bool {
    2 * depth > queue_depth || last_latency >= shed_threshold
}

/// The adaptive ordering selection rule: score the static order (first,
/// so ties defer to it) and the weight-derived candidate shapes against
/// the recorded column weights, pick the cheapest. Used by
/// [`crate::index::LogicalDatabase::build_index`] *and* by [`advise`], so
/// the advisor predicts exactly the pick a rebuild would make.
pub fn choose_ordering(
    static_order: Vec<usize>,
    weights: &[u64],
    bits: &[u32],
) -> (&'static str, Vec<usize>) {
    let mut cands = vec![("static", static_order)];
    cands.extend(order::candidates(weights));
    let mut best: Option<(&'static str, Vec<usize>, u128)> = None;
    for (cand, ord) in cands {
        let cost = order::score(&ord, weights, bits);
        if best.as_ref().is_none_or(|(_, _, b)| cost < *b) {
            best = Some((cand, ord, cost));
        }
    }
    let (picked, ord, _) = best.expect("static candidate always present");
    (picked, ord)
}

/// The apply-cache sizing rule: the explicit override wins, otherwise the
/// fixed default. `relcheck run --route auto` passes a workload-derived
/// override ([`WorkloadProfile::cache_slots`]).
pub fn manager_cache_slots(requested: Option<usize>) -> usize {
    requested.unwrap_or(DEFAULT_CACHE_SLOTS)
}

// ---------------------------------------------------------------------------
// The cost model: profile -> advice.
// ---------------------------------------------------------------------------

/// Where a relation's checks should be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Keep (or build) the BDD logical index.
    Bdd,
    /// Route checks reading this relation to the SQL rung.
    Sql,
}

impl Route {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Route::Bdd => "bdd",
            Route::Sql => "sql",
        }
    }
}

/// Per-relation advice: the route, the ordering candidate the recorded
/// weights favour, and the predicted/observed costs behind the call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexAdvice {
    /// The relation.
    pub relation: String,
    /// Recommended routing.
    pub route: Route,
    /// The ordering candidate the recorded weights favour
    /// (`"static"` / `"concatenated"` / `"frequency"` / `"interleaved"`).
    pub ordering: &'static str,
    /// Predicted cost of the BDD path: index nodes (measured when an index
    /// was materialized, a `rows x total-bits` upper bound otherwise)
    /// plus the weighted prefix-depth score of the best ordering.
    pub predicted_bdd_cost: u128,
    /// Predicted cost of the SQL path: cell visits for every observed
    /// check reading the relation (`checks x rows x arity`).
    pub predicted_sql_cost: u128,
    /// Observed checks that decided on the BDD rung.
    pub observed_bdd_checks: u64,
    /// Observed checks that decided on the SQL or brute-force rung.
    pub observed_sql_checks: u64,
    /// Measured index node count (0 = never materialized).
    pub index_nodes: u64,
    /// Row count the prediction used.
    pub rows: u64,
    /// The recorded column weights the ordering pick was scored against.
    pub weights: Vec<u64>,
}

/// Per-constraint routing policy implied by the relation advice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePolicy {
    /// The constraint name.
    pub constraint: String,
    /// The ladder entry rung the advice implies (`"bdd"` or `"sql"`).
    pub entry_rung: &'static str,
}

/// The advisor's complete output for one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Advice {
    /// Per-relation advice, sorted by relation name.
    pub relations: Vec<IndexAdvice>,
    /// Per-constraint routing, in the caller's constraint order.
    pub routes: Vec<RoutePolicy>,
    /// Recommended apply-cache slot count
    /// ([`WorkloadProfile::cache_slots`]).
    pub cache_slots: usize,
}

impl Advice {
    /// The advised SQL-only relation set.
    pub fn sql_routed(&self) -> HashSet<String> {
        self.relations
            .iter()
            .filter(|a| a.route == Route::Sql)
            .map(|a| a.relation.clone())
            .collect()
    }

    /// Fold the advice (and optionally what applying it did) into the
    /// metrics-schema `policy` block.
    pub fn metrics(
        &self,
        profile: &WorkloadProfile,
        applied: Option<&AppliedAdvice>,
    ) -> PolicyMetrics {
        let advised_sql = self
            .relations
            .iter()
            .filter(|a| a.route == Route::Sql)
            .count() as u64;
        PolicyMetrics {
            relations: self.relations.len() as u64,
            advised_bdd: self.relations.len() as u64 - advised_sql,
            advised_sql,
            applied_sql_only: applied.map_or(0, |a| a.sql_marked.len() as u64),
            applied_rebuilds: applied.map_or(0, |a| a.rebuilt.len() as u64),
            reseeded: applied.map_or(0, |a| a.reseeded),
            readvises: 0,
            cache_slots: self.cache_slots as u64,
            profile_checks: profile.checks,
        }
    }
}

/// Run the cost model: produce per-relation [`IndexAdvice`] for every
/// relation in the checker's database and per-constraint [`RoutePolicy`]
/// for each `(name, formula)` pair, from the recorded profile.
///
/// Deterministic: integer arithmetic only, relations visited in sorted
/// order, ties in the ordering scores resolved by candidate position.
pub fn advise(
    profile: &WorkloadProfile,
    checker: &mut Checker,
    constraints: &[(String, Formula)],
) -> Advice {
    let cold = RelationProfile::default();
    let mut names: Vec<String> = checker
        .logical_db()
        .db()
        .relation_names()
        .map(str::to_owned)
        .collect();
    names.sort();
    let mut relations = Vec::with_capacity(names.len());
    for name in &names {
        let prof = profile.relations.get(name).unwrap_or(&cold);
        let Some(rel) = checker.logical_db().db().relation(name).ok().cloned() else {
            continue;
        };
        let rows = if prof.rows > 0 {
            prof.rows
        } else {
            rel.len() as u64
        };
        let classes: Vec<String> = rel
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        let dom_sizes: Vec<u64> = classes
            .iter()
            .map(|class| checker.logical_db_mut().class_domain_size(class))
            .collect();
        let bits: Vec<u32> = dom_sizes.iter().map(|&s| order::block_bits(s)).collect();
        let total_bits: u128 = bits.iter().map(|&b| b as u128).sum();
        let mut weights = prof.weights.clone();
        weights.resize(rel.arity(), 0);
        let static_order = checker.options().ordering.order(&rel, &dom_sizes);
        let (ordering, best_order) = choose_ordering(static_order, &weights, &bits);
        let traverse = order::score(&best_order, &weights, &bits);
        let build: u128 = if prof.index_nodes > 0 {
            prof.index_nodes as u128
        } else {
            (rows as u128).saturating_mul(total_bits)
        };
        let predicted_bdd_cost = build.saturating_add(traverse);
        let touches = prof.bdd_checks + prof.sql_checks;
        let predicted_sql_cost = (touches.max(1) as u128)
            .saturating_mul(rows as u128)
            .saturating_mul(rel.arity() as u128);
        // Route to SQL only on observed evidence: the relation was read by
        // at least one check, and either the engine always ended on the
        // SQL rung without ever materializing an index (a budget-busted
        // build), or the model predicts the SQL path cheaper by at least
        // 2x. The margin is hysteresis: the two cost formulas are
        // heuristic and not unit-calibrated, so a near-tie must not
        // discard a live index (marking SQL-only is one-way).
        let always_fell_back =
            touches > 0 && prof.bdd_checks == 0 && prof.sql_checks > 0 && prof.index_nodes == 0;
        let route = if checker.is_sql_only(name)
            || always_fell_back
            || (touches > 0 && predicted_sql_cost.saturating_mul(2) < predicted_bdd_cost)
        {
            Route::Sql
        } else {
            Route::Bdd
        };
        relations.push(IndexAdvice {
            relation: name.clone(),
            route,
            ordering,
            predicted_bdd_cost,
            predicted_sql_cost,
            observed_bdd_checks: prof.bdd_checks,
            observed_sql_checks: prof.sql_checks,
            index_nodes: prof.index_nodes,
            rows,
            weights,
        });
    }
    let sql_routed: HashSet<String> = relations
        .iter()
        .filter(|a| a.route == Route::Sql)
        .map(|a| a.relation.clone())
        .collect();
    let routes = constraints
        .iter()
        .map(|(name, formula)| {
            let reads = crate::parallel::read_set(formula);
            let entry_rung = if bdd_route_allowed(reads.iter().map(String::as_str), &sql_routed) {
                "bdd"
            } else {
                "sql"
            };
            RoutePolicy {
                constraint: name.clone(),
                entry_rung,
            }
        })
        .collect();
    Advice {
        relations,
        routes,
        cache_slots: profile.cache_slots(),
    }
}

/// What [`apply_advice`] actually did to the checker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedAdvice {
    /// Relations newly marked SQL-only (each bumped the epoch).
    pub sql_marked: Vec<String>,
    /// Indexed relations rebuilt because the advised ordering pick differs
    /// from the current one (each bumped the epoch).
    pub rebuilt: Vec<String>,
    /// Relations whose recorded weights were seeded into the live
    /// workload so future adaptive (re)builds score against them.
    pub reseeded: u64,
}

/// Apply an [`Advice`] to a live checker — the `--route auto` mode.
///
/// Every mutation goes through the epoch-bumping invalidation paths, so
/// cached plans and registry verdicts that the advice could affect are
/// retired and re-derived; routing can therefore never change a verdict.
/// The application is deliberately conservative: relations already marked
/// SQL-only stay SQL-only (un-degrading is not supported by the checker),
/// and index rebuilds happen only under [`crate::ordering::OrderingStrategy::Adaptive`],
/// where the seeded weights change which ordering a rebuild picks.
pub fn apply_advice(checker: &mut Checker, advice: &Advice) -> Result<AppliedAdvice> {
    let mut applied = AppliedAdvice::default();
    let adaptive = matches!(
        checker.options().ordering,
        crate::ordering::OrderingStrategy::Adaptive
    );
    for a in &advice.relations {
        // Seed recorded weights by topping the live counters up to the
        // profile's values — never by adding on top of them. A warm
        // checker whose live weights already cover the profile is left
        // untouched, so re-advising is idempotent instead of inflating
        // the very weights the next recording would capture.
        let live = checker
            .logical_db()
            .column_weights(&a.relation)
            .map_or_else(Vec::new, <[u64]>::to_vec);
        let top_up: Vec<u64> = a
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| w.saturating_sub(live.get(i).copied().unwrap_or(0)))
            .collect();
        if top_up.iter().any(|&w| w > 0) {
            checker
                .logical_db_mut()
                .record_column_use(&a.relation, &top_up);
            applied.reseeded += 1;
        }
        match a.route {
            Route::Sql => {
                if !checker.is_sql_only(&a.relation) {
                    checker.mark_sql_only(&a.relation);
                    applied.sql_marked.push(a.relation.clone());
                }
            }
            Route::Bdd => {
                let pick = checker.logical_db().adaptive_pick(&a.relation);
                let indexed = checker.logical_db().has_index(&a.relation);
                if adaptive && indexed && pick != Some(a.ordering) {
                    checker.rebuild_index(&a.relation)?;
                    applied.rebuilt.push(a.relation.clone());
                }
            }
        }
    }
    Ok(applied)
}

/// Render the advise report: one line per relation and per constraint,
/// integers only — byte-identical across runs for a fixed recorded
/// profile.
pub fn render_report(profile: &WorkloadProfile, advice: &Advice) -> String {
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(
        &mut out,
        format!(
            "workload profile: checks={} peak-nodes={} op-cache={}/{} plan-cache={}/{}",
            profile.checks,
            profile.peak_nodes,
            profile.cache_hits,
            profile.cache_misses,
            profile.plan_hits,
            profile.plan_misses
        ),
    );
    let ops: Vec<String> = OpKind::ALL
        .iter()
        .enumerate()
        .filter(|&(i, _)| profile.op_calls[i] > 0)
        .map(|(i, k)| format!("{}={}", k.name(), profile.op_calls[i]))
        .collect();
    push(
        &mut out,
        format!(
            "recorded ops: {}",
            if ops.is_empty() {
                "(none)".to_owned()
            } else {
                ops.join(" ")
            }
        ),
    );
    push(&mut out, "relation advice:".to_owned());
    for a in &advice.relations {
        push(
            &mut out,
            format!(
                "  {:<24} route={:<4} ordering={:<12} rows={} index-nodes={} predicted bdd={} sql={} observed bdd/sql={}/{}",
                a.relation,
                a.route.name(),
                a.ordering,
                a.rows,
                a.index_nodes,
                a.predicted_bdd_cost,
                a.predicted_sql_cost,
                a.observed_bdd_checks,
                a.observed_sql_checks
            ),
        );
    }
    push(&mut out, "constraint routes:".to_owned());
    for r in &advice.routes {
        push(
            &mut out,
            format!("  {:<32} entry={}", r.constraint, r.entry_rung),
        );
    }
    let sql = advice
        .relations
        .iter()
        .filter(|a| a.route == Route::Sql)
        .count();
    push(
        &mut out,
        format!(
            "apply-cache: {} slots (default {}; from peak {} live nodes)",
            advice.cache_slots, DEFAULT_CACHE_SLOTS, profile.peak_nodes
        ),
    );
    let verdict = if sql == 0 && advice.cache_slots == DEFAULT_CACHE_SLOTS {
        "no-win: the static configuration already matches the advice; applying it changes nothing"
    } else {
        "win predicted: applying this advice changes routing and/or cache sizing (verdicts unchanged by construction)"
    };
    push(
        &mut out,
        format!(
            "summary: {} relations -> {} bdd, {} sql-only; {}",
            advice.relations.len(),
            advice.relations.len() - sql,
            sql,
            verdict
        ),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerOptions;
    use relcheck_relstore::{Database, Raw};

    fn small_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "R",
            &[("x", "k"), ("y", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(2), Raw::Int(2)],
            ],
        )
        .unwrap();
        db.create_relation(
            "S",
            &[("x", "k")],
            vec![vec![Raw::Int(1)], vec![Raw::Int(2)]],
        )
        .unwrap();
        db
    }

    fn constraints() -> Vec<(String, Formula)> {
        vec![
            (
                "r-diagonal".to_owned(),
                relcheck_logic::parse("forall x, y. R(x, y) -> x = y").unwrap(),
            ),
            (
                "s-nonempty".to_owned(),
                relcheck_logic::parse("exists x. S(x)").unwrap(),
            ),
        ]
    }

    fn recorded_profile() -> WorkloadProfile {
        let mut checker = Checker::new(small_db(), CheckerOptions::default());
        let cs = constraints();
        let reports: Vec<(String, CheckReport)> = cs
            .iter()
            .map(|(n, f)| (n.clone(), checker.check(f).unwrap()))
            .collect();
        WorkloadProfile::record(&checker, &cs, &reports)
    }

    #[test]
    fn profile_round_trips_through_bytes() {
        let p = recorded_profile();
        assert_eq!(p.checks, 2);
        assert!(p.relations.contains_key("R"));
        let bytes = p.to_bytes();
        let q = WorkloadProfile::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
        assert_eq!(bytes, q.to_bytes(), "encoding is deterministic");
    }

    #[test]
    fn corrupt_profiles_decode_to_typed_errors() {
        let p = recorded_profile();
        let mut bytes = p.to_bytes();
        // Flip a payload bit: CRC failure.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            WorkloadProfile::from_bytes(&bytes),
            Err(CoreError::SnapshotDecode(_))
        ));
        // Truncate inside the header.
        assert!(matches!(
            WorkloadProfile::from_bytes(&p.to_bytes()[..10]),
            Err(CoreError::SnapshotDecode(_))
        ));
        // Wrong magic.
        let mut wrong = p.to_bytes();
        wrong[0] = b'X';
        assert!(matches!(
            WorkloadProfile::from_bytes(&wrong),
            Err(CoreError::SnapshotDecode(_))
        ));
    }

    #[test]
    fn persistence_survives_a_restart_and_missing_files_are_cold() {
        let dir = std::env::temp_dir().join(format!("relcheck-policy-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(WorkloadProfile::load(&dir).unwrap().is_none(), "cold start");
        let p = recorded_profile();
        p.save(&dir).unwrap();
        let q = WorkloadProfile::load(&dir).unwrap().expect("persisted");
        assert_eq!(p, q);
        // Corruption: typed error, not a panic.
        fs::write(dir.join(PROFILE_FILE), b"garbage").unwrap();
        assert!(matches!(
            WorkloadProfile::load(&dir),
            Err(CoreError::SnapshotDecode(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_adds_counters_and_keeps_latest_state() {
        let mut a = recorded_profile();
        let checks = a.checks;
        let b = recorded_profile();
        a.merge(&b);
        assert_eq!(a.checks, checks * 2);
        let ra = &a.relations["R"];
        let rb = &b.relations["R"];
        assert_eq!(ra.rows, rb.rows, "rows are latest-observation state");
        assert!(ra.weights.iter().zip(&rb.weights).all(|(x, y)| x >= y));
    }

    #[test]
    fn advice_is_deterministic_and_reports_are_byte_identical() {
        let p = recorded_profile();
        let cs = constraints();
        let mut c1 = Checker::new(small_db(), CheckerOptions::default());
        let mut c2 = Checker::new(small_db(), CheckerOptions::default());
        let a1 = advise(&p, &mut c1, &cs);
        let a2 = advise(&p, &mut c2, &cs);
        assert_eq!(a1, a2);
        assert_eq!(render_report(&p, &a1), render_report(&p, &a2));
        assert_eq!(a1.routes.len(), 2);
    }

    #[test]
    fn applying_advice_never_changes_verdicts() {
        let p = recorded_profile();
        let cs = constraints();
        let mut plain = Checker::new(small_db(), CheckerOptions::default());
        let baseline: Vec<bool> = cs
            .iter()
            .map(|(_, f)| plain.check(f).unwrap().holds)
            .collect();
        let mut auto = Checker::new(small_db(), CheckerOptions::default());
        let advice = advise(&p, &mut auto, &cs);
        let epoch_before = auto.epoch();
        let applied = apply_advice(&mut auto, &advice).unwrap();
        if !applied.sql_marked.is_empty() || !applied.rebuilt.is_empty() {
            assert!(auto.epoch() > epoch_before, "mutations bump the epoch");
        }
        let advised: Vec<bool> = cs
            .iter()
            .map(|(_, f)| auto.check(f).unwrap().holds)
            .collect();
        assert_eq!(baseline, advised);
    }

    #[test]
    fn routing_rules_match_their_former_inline_forms() {
        let sql_only: HashSet<String> = ["R".to_owned()].into_iter().collect();
        assert!(!bdd_route_allowed(["R", "S"], &sql_only));
        assert!(bdd_route_allowed(["S"], &sql_only));
        assert!(bdd_route_allowed(std::iter::empty(), &sql_only));
        assert!(shed_entry_skips_bdd(true, true));
        assert!(!shed_entry_skips_bdd(true, false));
        assert!(!shed_entry_skips_bdd(false, true));
        let ms = Duration::from_millis;
        assert!(admission_should_shed(33, 64, ms(0), ms(500)));
        assert!(!admission_should_shed(32, 64, ms(0), ms(500)));
        assert!(admission_should_shed(0, 64, ms(500), ms(500)));
    }

    #[test]
    fn cache_slots_scale_with_peak_and_stay_bounded() {
        let mut p = WorkloadProfile::default();
        assert_eq!(p.cache_slots(), DEFAULT_CACHE_SLOTS);
        p.peak_nodes = 157_587;
        assert_eq!(p.cache_slots(), 1 << 19);
        p.peak_nodes = 1;
        assert_eq!(p.cache_slots(), MIN_CACHE_SLOTS);
        p.peak_nodes = u64::MAX / 4;
        assert_eq!(p.cache_slots(), MAX_CACHE_SLOTS);
        assert_eq!(manager_cache_slots(None), DEFAULT_CACHE_SLOTS);
        assert_eq!(manager_cache_slots(Some(4096)), 4096);
    }
}
