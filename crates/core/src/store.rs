//! Crash-safe persistent index store.
//!
//! Indices are expensive to build and cheap to maintain (the paper's
//! Figure 4(b) incremental-maintenance argument); this module makes them
//! cheap to *reuse across runs* by persisting each relation's logical
//! index durably and recovering it on open. Three kinds of file live in
//! the cache directory:
//!
//! - **Segments** (`NAME-HASH.seg`): one relation's [`IndexSnapshot`]
//!   inside a checksummed, versioned frame whose meta block records the
//!   base-data fingerprint, the ordering tag, and `seg_seq` — how many
//!   journal records the snapshot already folds in. Written via
//!   write-temp + fsync + atomic-rename.
//! - **Journals** (`NAME-HASH.jnl`): an append-only log of tuple deltas,
//!   one CRC-framed record per insert/delete, holding **raw values** (not
//!   dictionary codes — codes minted in a previous session are not
//!   reconstructible from the base CSV, raw values always are). Appends
//!   are journal-first: the record is fsynced before the in-memory
//!   database or index sees the delta.
//! - **The manifest** (`manifest`): the commit point. A frame listing,
//!   per relation, which segment is current plus the fingerprint and
//!   `seg_seq` it must agree with. Committed via write-temp + fsync +
//!   atomic-rename + directory fsync; a crash before the rename leaves
//!   the previous manifest (and a consistent, if older, cache) in place.
//!
//! Recovery is paranoid and rebuild-happy: torn writes, truncation, bit
//! flips, stale fingerprints, and domain growth are all detected by the
//! typed [`DecodeError`] machinery (or per-record CRCs) and answered by
//! auto-rebuilding from the base data already loaded in the [`Checker`].
//! Every such event is recorded as a [`RecoveryRecord`] in
//! [`IndexStore::stats`] — never a panic, and never a wrong verdict: a
//! warm start that cannot trust the disk degrades to exactly what a cold
//! start would compute. Reads are paranoid; writes are best-effort (a
//! failed segment or manifest write increments `write_failures` and the
//! run carries on — the cache just stays cold).
//!
//! Every write-path syscall site is guarded by a [`failpoint`] so crash
//! recovery is tested deterministically: an armed site leaves a *torn*
//! file (a partial write at the final path — modelling post-rename data
//! loss, the strictest case a reader must survive) before erroring.

use crate::checker::Checker;
use crate::error::{CoreError, Result};
use crate::index::IndexSnapshot;
use crate::ordering::OrderingStrategy;
use crate::telemetry::{recovery_reason, IndexCacheMetrics, RecoveryRecord};
use relcheck_bdd::{crc32, decode_frame, encode_frame, failpoint, BddError, DecodeError};
use relcheck_relstore::{Database, Raw};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic for segment files.
pub const SEGMENT_MAGIC: [u8; 4] = *b"RCS1";
/// Magic for the manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"RCM1";
/// Magic opening a journal file's header.
pub const JOURNAL_MAGIC: [u8; 4] = *b"RCJ1";
/// On-disk format version shared by all three file kinds.
pub const FORMAT_VERSION: u32 = 1;

/// One tuple delta, in raw (pre-dictionary) values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// Insert this tuple.
    Insert(Vec<Raw>),
    /// Delete this tuple.
    Delete(Vec<Raw>),
}

impl Delta {
    /// The tuple either way.
    pub fn values(&self) -> &[Raw] {
        match self {
            Delta::Insert(v) | Delta::Delete(v) => v,
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            Delta::Insert(_) => 0,
            Delta::Delete(_) => 1,
        }
    }
}

/// What `index verify` reports per relation — read-only, no repairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyStatus {
    /// Segment and journal are healthy.
    Ok {
        /// Journal records the segment folds in.
        seg_seq: u64,
        /// Readable journal records on disk.
        journal: u64,
    },
    /// No manifest entry for this relation.
    NotCached,
    /// The base data changed since the segment was written.
    Stale,
    /// Manifest references a segment that is not on disk.
    SegmentMissing,
    /// The segment failed frame or structural validation.
    SegmentCorrupt {
        /// Offset where decoding stopped making sense.
        offset: usize,
        /// Why.
        reason: String,
    },
    /// The journal ends in a partial record (recoverable by truncation).
    JournalTorn {
        /// Readable records before the tear.
        valid: u64,
    },
    /// A journal record in the body failed its CRC.
    JournalCorrupt {
        /// Byte offset of the bad record.
        offset: usize,
        /// Readable records before it.
        valid: u64,
    },
}

impl std::fmt::Display for VerifyStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyStatus::Ok { seg_seq, journal } => {
                write!(
                    f,
                    "ok (segment folds {seg_seq} of {journal} journal records)"
                )
            }
            VerifyStatus::NotCached => write!(f, "not cached"),
            VerifyStatus::Stale => write!(f, "stale (base data changed)"),
            VerifyStatus::SegmentMissing => write!(f, "segment file missing"),
            VerifyStatus::SegmentCorrupt { offset, reason } => {
                write!(f, "segment corrupt at offset {offset}: {reason}")
            }
            VerifyStatus::JournalTorn { valid } => {
                write!(f, "journal torn after {valid} record(s)")
            }
            VerifyStatus::JournalCorrupt { offset, valid } => {
                write!(
                    f,
                    "journal corrupt at offset {offset} ({valid} record(s) readable)"
                )
            }
        }
    }
}

/// One manifest entry: which segment is current for a relation and what
/// it must agree with.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    segment: String,
    base_fp: u64,
    ordering_tag: u64,
    seg_seq: u64,
}

/// How a journal scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JournalTail {
    /// Every byte accounted for.
    Clean,
    /// No journal file (equivalent to an empty journal).
    Missing,
    /// Partial record at the tail; `valid_bytes` is the healthy prefix.
    Torn { valid_bytes: u64 },
    /// A record in the body failed validation at `offset`.
    Corrupt {
        offset: usize,
        reason: &'static str,
        valid_bytes: u64,
    },
}

/// The durable index store for one cache directory. See the module docs
/// for the on-disk formats and the recovery decision tree.
pub struct IndexStore {
    dir: PathBuf,
    manifest: BTreeMap<String, ManifestEntry>,
    /// Counters and recovery events for the current session; the CLI
    /// copies this into the metrics document's `index_cache` section.
    pub stats: IndexCacheMetrics,
    /// Base-data fingerprints captured by `warm_start` *before* journal
    /// values were interned — what `write_back` stamps into segments.
    base_fps: BTreeMap<String, u64>,
    /// Readable journal records per relation, as of the last scan.
    journal_counts: BTreeMap<String, u64>,
    /// Relations whose segment must be (re)written by `write_back`:
    /// misses, rebuilds, and hits that replayed journal records
    /// (compaction). Clean hits are not dirty.
    dirty: BTreeMap<String, bool>,
    ordering_tag: u64,
}

/// The ordering tag stamped into segments: two sessions agree on it iff
/// they build indices with the same [`OrderingStrategy`].
pub fn ordering_tag(strategy: OrderingStrategy) -> u64 {
    failpoint::key_str(&format!("{strategy:?}"))
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> CoreError {
    CoreError::Io {
        op,
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Journal-append failures worth retrying: injected faults (the chaos
/// model for a flaky disk) and real I/O errors. Anything else — arity or
/// schema problems, domain overflow — is deterministic and retrying
/// cannot help.
fn transient_append_failure(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::Bdd(BddError::FaultInjected { .. }) | CoreError::Io { .. }
    )
}

/// Keep file names portable: alphanumerics pass, everything else becomes
/// `_`, and a hash of the exact name disambiguates collisions.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Segment file name for a relation.
pub fn segment_file_name(relation: &str) -> String {
    format!(
        "{}-{:016x}.seg",
        sanitize(relation),
        failpoint::key_str(relation)
    )
}

/// Journal file name for a relation.
pub fn journal_file_name(relation: &str) -> String {
    format!(
        "{}-{:016x}.jnl",
        sanitize(relation),
        failpoint::key_str(relation)
    )
}

/// Encode one journal record (length-prefixed, CRC-framed). Public so
/// corruption tests can hand-craft journals byte by byte.
pub fn encode_journal_record(delta: &Delta) -> Vec<u8> {
    let mut body = Vec::new();
    body.push(delta.kind_byte());
    let values = delta.values();
    body.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        match v {
            Raw::Int(i) => {
                body.push(0);
                body.extend_from_slice(&i.to_le_bytes());
            }
            Raw::Str(s) => {
                body.push(1);
                body.extend_from_slice(&(s.len() as u32).to_le_bytes());
                body.extend_from_slice(s.as_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_journal_record(body: &[u8]) -> std::result::Result<Delta, &'static str> {
    let kind = *body.first().ok_or("record body empty")?;
    let arity_bytes = body.get(1..5).ok_or("record truncated inside arity")?;
    let arity = u32::from_le_bytes(arity_bytes.try_into().unwrap()) as usize;
    let mut off = 5usize;
    let mut values = Vec::with_capacity(arity.min(1 << 12));
    for _ in 0..arity {
        let tag = *body.get(off).ok_or("record truncated inside a value tag")?;
        off += 1;
        match tag {
            0 => {
                let w = body
                    .get(off..off + 8)
                    .ok_or("record truncated inside an int value")?;
                values.push(Raw::Int(i64::from_le_bytes(w.try_into().unwrap())));
                off += 8;
            }
            1 => {
                let w = body
                    .get(off..off + 4)
                    .ok_or("record truncated inside a string length")?;
                let len = u32::from_le_bytes(w.try_into().unwrap()) as usize;
                off += 4;
                let s = body
                    .get(off..off.checked_add(len).ok_or("string length overflows")?)
                    .ok_or("record truncated inside a string value")?;
                let s = std::str::from_utf8(s).map_err(|_| "string value is not UTF-8")?;
                values.push(Raw::Str(s.to_owned()));
                off += len;
            }
            _ => return Err("unknown value tag"),
        }
    }
    if off != body.len() {
        return Err("record body longer than its values");
    }
    match kind {
        0 => Ok(Delta::Insert(values)),
        1 => Ok(Delta::Delete(values)),
        _ => Err("unknown record kind"),
    }
}

/// Journal header: magic, version, relation name, CRC over both. Public
/// (like [`encode_journal_record`]) so corruption tests can hand-craft
/// journal files byte by byte.
pub fn journal_header(relation: &str) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    body.extend_from_slice(&(relation.len() as u32).to_le_bytes());
    body.extend_from_slice(relation.as_bytes());
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Scan a journal file: the readable record prefix plus how the file
/// ends. Read-only — truncation repairs are the caller's decision.
fn scan_journal(path: &Path, relation: &str) -> (Vec<Delta>, JournalTail) {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(_) => return (Vec::new(), JournalTail::Missing),
    };
    let header = journal_header(relation);
    if bytes.len() < header.len() {
        return (Vec::new(), JournalTail::Torn { valid_bytes: 0 });
    }
    if bytes[..header.len()] != header[..] {
        return (
            Vec::new(),
            JournalTail::Corrupt {
                offset: 0,
                reason: "journal header mismatch",
                valid_bytes: 0,
            },
        );
    }
    let mut records = Vec::new();
    let mut off = header.len();
    while off < bytes.len() {
        let Some(w) = bytes.get(off..off + 4) else {
            return (
                records,
                JournalTail::Torn {
                    valid_bytes: off as u64,
                },
            );
        };
        let len = u32::from_le_bytes(w.try_into().unwrap()) as usize;
        let Some(crc_w) = bytes.get(off + 4..off + 8) else {
            return (
                records,
                JournalTail::Torn {
                    valid_bytes: off as u64,
                },
            );
        };
        let crc = u32::from_le_bytes(crc_w.try_into().unwrap());
        let Some(body) = bytes.get(off + 8..off + 8 + len) else {
            // Tail shorter than the record claims: torn append.
            return (
                records,
                JournalTail::Torn {
                    valid_bytes: off as u64,
                },
            );
        };
        if crc32(body) != crc {
            return (
                records,
                JournalTail::Corrupt {
                    offset: off,
                    reason: "journal record checksum mismatch",
                    valid_bytes: off as u64,
                },
            );
        }
        match decode_journal_record(body) {
            Ok(d) => records.push(d),
            Err(reason) => {
                return (
                    records,
                    JournalTail::Corrupt {
                        offset: off,
                        reason,
                        valid_bytes: off as u64,
                    },
                )
            }
        }
        off += 8 + len;
    }
    (records, JournalTail::Clean)
}

/// Segment meta block: relation name, base fingerprint, ordering tag,
/// `seg_seq`.
fn encode_segment_meta(relation: &str, base_fp: u64, ordering_tag: u64, seg_seq: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(relation.len() as u32).to_le_bytes());
    out.extend_from_slice(relation.as_bytes());
    out.extend_from_slice(&base_fp.to_le_bytes());
    out.extend_from_slice(&ordering_tag.to_le_bytes());
    out.extend_from_slice(&seg_seq.to_le_bytes());
    out
}

fn decode_segment_meta(meta: &[u8]) -> std::result::Result<(String, u64, u64, u64), DecodeError> {
    let fail = |offset, reason| Err(DecodeError { offset, reason });
    let Some(w) = meta.get(0..4) else {
        return fail(0, "segment meta truncated inside the name length");
    };
    let name_len = u32::from_le_bytes(w.try_into().unwrap()) as usize;
    let Some(name) = meta.get(4..4 + name_len) else {
        return fail(4, "segment meta truncated inside the relation name");
    };
    let Ok(name) = std::str::from_utf8(name) else {
        return fail(4, "segment relation name is not UTF-8");
    };
    let rest = &meta[4 + name_len..];
    if rest.len() != 24 {
        return fail(4 + name_len, "segment meta has the wrong trailer length");
    }
    let base_fp = u64::from_le_bytes(rest[0..8].try_into().unwrap());
    let ordering_tag = u64::from_le_bytes(rest[8..16].try_into().unwrap());
    let seg_seq = u64::from_le_bytes(rest[16..24].try_into().unwrap());
    Ok((name.to_owned(), base_fp, ordering_tag, seg_seq))
}

fn encode_manifest(entries: &BTreeMap<String, ManifestEntry>) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, e) in entries {
        payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(&(e.segment.len() as u32).to_le_bytes());
        payload.extend_from_slice(e.segment.as_bytes());
        payload.extend_from_slice(&e.base_fp.to_le_bytes());
        payload.extend_from_slice(&e.ordering_tag.to_le_bytes());
        payload.extend_from_slice(&e.seg_seq.to_le_bytes());
    }
    encode_frame(MANIFEST_MAGIC, FORMAT_VERSION, &[], &payload)
}

fn decode_manifest(
    bytes: &[u8],
) -> std::result::Result<BTreeMap<String, ManifestEntry>, DecodeError> {
    let (_, payload) = decode_frame(bytes, MANIFEST_MAGIC, FORMAT_VERSION)?;
    let fail = |offset, reason| Err(DecodeError { offset, reason });
    let Some(w) = payload.get(0..4) else {
        return fail(0, "manifest truncated inside the entry count");
    };
    let count = u32::from_le_bytes(w.try_into().unwrap()) as usize;
    let mut off = 4usize;
    let read_str = |off: &mut usize| -> std::result::Result<String, DecodeError> {
        let w = payload.get(*off..*off + 4).ok_or(DecodeError {
            offset: *off,
            reason: "manifest truncated inside a string length",
        })?;
        let len = u32::from_le_bytes(w.try_into().unwrap()) as usize;
        *off += 4;
        let s = payload.get(*off..*off + len).ok_or(DecodeError {
            offset: *off,
            reason: "manifest truncated inside a string",
        })?;
        let s = std::str::from_utf8(s).map_err(|_| DecodeError {
            offset: *off,
            reason: "manifest string is not UTF-8",
        })?;
        *off += len;
        Ok(s.to_owned())
    };
    let mut out = BTreeMap::new();
    for _ in 0..count {
        let name = read_str(&mut off)?;
        let segment = read_str(&mut off)?;
        let Some(w) = payload.get(off..off + 24) else {
            return fail(off, "manifest truncated inside an entry trailer");
        };
        let base_fp = u64::from_le_bytes(w[0..8].try_into().unwrap());
        let ordering_tag = u64::from_le_bytes(w[8..16].try_into().unwrap());
        let seg_seq = u64::from_le_bytes(w[16..24].try_into().unwrap());
        off += 24;
        if out
            .insert(
                name,
                ManifestEntry {
                    segment,
                    base_fp,
                    ordering_tag,
                    seg_seq,
                },
            )
            .is_some()
        {
            return fail(off, "manifest repeats a relation");
        }
    }
    if off != payload.len() {
        return fail(off, "manifest payload longer than its entries");
    }
    Ok(out)
}

/// Per-relation decision after probing the cache.
enum Decision {
    Hit(Box<IndexSnapshot>, u64),
    Miss,
    Rebuild(RecoveryRecord),
}

impl IndexStore {
    /// Open (or create) a cache directory and load its manifest. A
    /// corrupt manifest is a recovery event, not an error: the store
    /// opens empty and every relation becomes a miss.
    pub fn open(dir: impl Into<PathBuf>) -> Result<IndexStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        let mut store = IndexStore {
            dir,
            manifest: BTreeMap::new(),
            stats: IndexCacheMetrics::default(),
            base_fps: BTreeMap::new(),
            journal_counts: BTreeMap::new(),
            dirty: BTreeMap::new(),
            ordering_tag: 0,
        };
        let path = store.manifest_path();
        match fs::read(&path) {
            Err(_) => {} // first run: no manifest yet
            Ok(bytes) => match decode_manifest(&bytes) {
                Ok(m) => store.manifest = m,
                Err(e) => store.stats.recoveries.push(RecoveryRecord {
                    relation: "*".to_owned(),
                    reason: recovery_reason::MANIFEST_CORRUPT,
                    detail: format!("offset {}: {}", e.offset, e.reason),
                }),
            },
        }
        Ok(store)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest")
    }

    /// Warm-start a checker from the cache: load each cached index whose
    /// fingerprint, frame, and domain layout all check out, replay its
    /// journal through incremental maintenance, and rebuild everything
    /// else from the base data. On return the checker holds an index (or
    /// a SQL-only marker) for every relation, and verdicts are identical
    /// to what a cold start over the same logical state would produce.
    ///
    /// Call [`IndexStore::write_back`] afterwards to persist what was
    /// built and compact replayed journals into fresh segments.
    pub fn warm_start(&mut self, ck: &mut Checker) -> Result<()> {
        self.ordering_tag = ordering_tag(ck.options().ordering);
        let mut names: Vec<String> = ck
            .logical_db()
            .db()
            .relation_names()
            .map(str::to_owned)
            .collect();
        names.sort();

        // Phase 1 — fingerprints, *before* journal values widen any
        // dictionary: segments are stamped with the base-CSV state.
        for name in &names {
            let fp = ck.logical_db().db().relation_fingerprint(name)?;
            self.base_fps.insert(name.clone(), fp);
        }

        // Phase 2 — scan journals, repairing torn tails and truncating
        // away corrupt suffixes (the records before the damage stay).
        let mut journals: BTreeMap<String, Vec<Delta>> = BTreeMap::new();
        for name in &names {
            let path = self.dir.join(journal_file_name(name));
            let (mut records, tail) = scan_journal(&path, name);
            match tail {
                JournalTail::Clean | JournalTail::Missing => {}
                JournalTail::Torn { valid_bytes } => {
                    self.repair_journal(name, &path, &records, valid_bytes);
                    self.stats.recoveries.push(RecoveryRecord {
                        relation: name.clone(),
                        reason: recovery_reason::JOURNAL_TORN,
                        detail: format!(
                            "partial record discarded; {} record(s) retained",
                            records.len()
                        ),
                    });
                }
                JournalTail::Corrupt {
                    offset,
                    reason,
                    valid_bytes,
                } => {
                    self.repair_journal(name, &path, &records, valid_bytes);
                    self.stats.recoveries.push(RecoveryRecord {
                        relation: name.clone(),
                        reason: recovery_reason::JOURNAL_CORRUPT,
                        detail: format!(
                            "offset {offset}: {reason}; {} record(s) retained",
                            records.len()
                        ),
                    });
                }
            }
            // A record whose arity disagrees with the schema is corruption
            // the CRC cannot catch (it protects bytes, not meaning).
            let arity = ck.logical_db().db().relation(name)?.arity();
            if let Some(bad) = records.iter().position(|d| d.values().len() != arity) {
                records.truncate(bad);
                let keep: Vec<u8> = {
                    let mut buf = journal_header(name);
                    for d in &records {
                        buf.extend_from_slice(&encode_journal_record(d));
                    }
                    buf
                };
                let _ = fs::write(&path, keep);
                self.stats.recoveries.push(RecoveryRecord {
                    relation: name.clone(),
                    reason: recovery_reason::JOURNAL_CORRUPT,
                    detail: format!("record {bad} has the wrong arity; suffix discarded"),
                });
            }
            self.journal_counts
                .insert(name.clone(), records.len() as u64);
            journals.insert(name.clone(), records);
        }

        // Phase 3 — intern every journaled value so dictionaries (and the
        // class sizes frozen next) cover the post-replay state uniformly.
        for name in &names {
            let classes: Vec<String> = ck
                .logical_db()
                .db()
                .relation(name)?
                .schema()
                .columns()
                .iter()
                .map(|c| c.class.clone())
                .collect();
            for d in &journals[name] {
                for (i, v) in d.values().iter().enumerate() {
                    ck.logical_db_mut().db_mut().encode_value(&classes[i], v);
                }
            }
        }

        // Phase 4 — freeze all class sizes before importing any segment,
        // so a shared class cannot be frozen narrow by one relation's
        // import and then overflowed by a sibling's journal.
        for name in &names {
            let classes: Vec<String> = ck
                .logical_db()
                .db()
                .relation(name)?
                .schema()
                .columns()
                .iter()
                .map(|c| c.class.clone())
                .collect();
            for class in classes {
                ck.logical_db_mut().class_domain_size(&class);
            }
        }

        // Phase 5 — per relation: adopt the cached segment or rebuild.
        for name in &names {
            let records = journals.remove(name).unwrap_or_default();
            let decision = self.decide(ck, name, records.len() as u64)?;
            match decision {
                Decision::Hit(snap, seg_seq) => {
                    self.adopt(ck, name, &snap, seg_seq, &records)?;
                }
                Decision::Miss => {
                    self.rebuild(ck, name, &records, false)?;
                }
                Decision::Rebuild(rec) => {
                    self.stats.recoveries.push(rec);
                    self.rebuild(ck, name, &records, true)?;
                }
            }
        }
        Ok(())
    }

    /// Truncate a journal back to its healthy prefix (best-effort; if the
    /// rewrite fails the next open will just re-detect the damage).
    fn repair_journal(&mut self, name: &str, path: &Path, records: &[Delta], valid_bytes: u64) {
        let rewrite = if valid_bytes >= journal_header(name).len() as u64 {
            // Healthy header: truncate in place.
            fs::OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_len(valid_bytes))
        } else {
            // Header itself damaged: rewrite from the decoded records.
            let mut buf = journal_header(name);
            for d in records {
                buf.extend_from_slice(&encode_journal_record(d));
            }
            fs::write(path, buf)
        };
        if rewrite.is_err() {
            self.stats.write_failures += 1;
        }
    }

    /// Probe manifest + segment for one relation. Does not touch the
    /// checker's indices; domain-width checks happen here too since the
    /// class sizes are already frozen.
    fn decide(&mut self, ck: &mut Checker, name: &str, journal_len: u64) -> Result<Decision> {
        let Some(entry) = self.manifest.get(name).cloned() else {
            return Ok(Decision::Miss);
        };
        let fp = self.base_fps[name];
        let rebuild = |reason, detail: String| {
            Ok(Decision::Rebuild(RecoveryRecord {
                relation: name.to_owned(),
                reason,
                detail,
            }))
        };
        if entry.base_fp != fp {
            return rebuild(
                recovery_reason::STALE_FINGERPRINT,
                format!(
                    "segment fp {:016x}, base data fp {:016x}",
                    entry.base_fp, fp
                ),
            );
        }
        if entry.ordering_tag != self.ordering_tag {
            return rebuild(
                recovery_reason::STALE_FINGERPRINT,
                "ordering strategy changed since the segment was written".to_owned(),
            );
        }
        let seg_path = self.dir.join(&entry.segment);
        let bytes = match fs::read(&seg_path) {
            Ok(b) => b,
            Err(e) => {
                return rebuild(
                    recovery_reason::SEGMENT_MISSING,
                    format!("{}: {e}", seg_path.display()),
                )
            }
        };
        let (meta, payload) = match decode_frame(&bytes, SEGMENT_MAGIC, FORMAT_VERSION) {
            Ok(mp) => mp,
            Err(e) => {
                return rebuild(
                    recovery_reason::SEGMENT_CORRUPT,
                    format!("offset {}: {}", e.offset, e.reason),
                )
            }
        };
        let (seg_name, seg_fp, seg_tag, seg_seq) = match decode_segment_meta(meta) {
            Ok(m) => m,
            Err(e) => {
                return rebuild(
                    recovery_reason::SEGMENT_CORRUPT,
                    format!("meta offset {}: {}", e.offset, e.reason),
                )
            }
        };
        if seg_name != name
            || seg_fp != entry.base_fp
            || seg_tag != entry.ordering_tag
            || seg_seq != entry.seg_seq
        {
            return rebuild(
                recovery_reason::SEGMENT_CORRUPT,
                "segment meta disagrees with the manifest".to_owned(),
            );
        }
        if seg_seq > journal_len {
            return rebuild(
                recovery_reason::JOURNAL_CORRUPT,
                format!(
                    "segment folds {seg_seq} journal record(s) but only {journal_len} are readable"
                ),
            );
        }
        let snap = match IndexSnapshot::from_bytes(payload) {
            Ok(s) => s,
            Err(CoreError::SnapshotDecode(e)) => {
                return rebuild(
                    recovery_reason::SEGMENT_CORRUPT,
                    format!("snapshot offset {}: {}", e.offset, e.reason),
                )
            }
            Err(e) => return Err(e),
        };
        if snap.relation != name {
            return rebuild(
                recovery_reason::SEGMENT_CORRUPT,
                "snapshot names a different relation".to_owned(),
            );
        }
        // Domain-width check against the frozen class sizes: a journaled
        // value from a class that outgrew its block cannot be replayed
        // into this snapshot.
        let classes: Vec<String> = ck
            .logical_db()
            .db()
            .relation(name)?
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        if snap.rel.slots.len() != classes.len() {
            return rebuild(
                recovery_reason::SEGMENT_CORRUPT,
                "snapshot arity disagrees with the schema".to_owned(),
            );
        }
        for (i, class) in classes.iter().enumerate() {
            let need = ck.logical_db_mut().class_domain_size(class);
            let have = snap.rel.blocks[snap.rel.slots[i]].0;
            if have != need {
                return rebuild(
                    recovery_reason::DOMAIN_OVERFLOW,
                    format!("class {class:?} needs domain size {need}, segment block holds {have}"),
                );
            }
        }
        Ok(Decision::Hit(Box::new(snap), seg_seq))
    }

    /// Adopt a validated snapshot and replay its journal. Records older
    /// than `seg_seq` are already folded into the snapshot's BDD, so they
    /// re-apply to the relation rows only; newer records go through full
    /// incremental maintenance. Any replay failure degrades to a rebuild.
    fn adopt(
        &mut self,
        ck: &mut Checker,
        name: &str,
        snap: &IndexSnapshot,
        seg_seq: u64,
        records: &[Delta],
    ) -> Result<()> {
        if let Err(e) = ck.logical_db_mut().import_index(snap) {
            // Injected faults and budget aborts degrade to a rebuild;
            // anything else is a genuine bug worth surfacing.
            if crate::checker::budget_abort(&e).is_none() {
                return Err(e);
            }
            self.stats.recoveries.push(RecoveryRecord {
                relation: name.to_owned(),
                reason: recovery_reason::SEGMENT_CORRUPT,
                detail: format!("import failed: {e}"),
            });
            return self.rebuild(ck, name, records, true);
        }
        for (i, d) in records.iter().enumerate() {
            let row = self.encode_row(ck, name, d.values())?;
            let result = if (i as u64) < seg_seq {
                // Rows-only: the index already contains this delta.
                let rel = ck.logical_db_mut().db_mut().relation_mut(name)?;
                match d {
                    Delta::Insert(_) => rel.insert(&row).map(|_| ()),
                    Delta::Delete(_) => rel.delete(&row).map(|_| ()),
                }
                .map_err(CoreError::from)
            } else {
                self.stats.journal_replayed += 1;
                match d {
                    Delta::Insert(_) => ck.logical_db_mut().insert_tuple(name, &row).map(|_| ()),
                    Delta::Delete(_) => ck.logical_db_mut().delete_tuple(name, &row).map(|_| ()),
                }
            };
            if let Err(e) = result {
                // Finish the remaining records rows-only, then rebuild the
                // index from the rows: state first, index second.
                self.stats.recoveries.push(RecoveryRecord {
                    relation: name.to_owned(),
                    reason: recovery_reason::REPLAY_FAILED,
                    detail: format!("record {i}: {e}"),
                });
                for d in &records[i..] {
                    let row = self.encode_row(ck, name, d.values())?;
                    let rel = ck.logical_db_mut().db_mut().relation_mut(name)?;
                    let _ = match d {
                        Delta::Insert(_) => rel.insert(&row),
                        Delta::Delete(_) => rel.delete(&row),
                    };
                }
                ck.rebuild_index(name)?;
                self.stats.misses += 1;
                self.stats.rebuilds += 1;
                self.dirty.insert(name.to_owned(), true);
                return Ok(());
            }
        }
        self.stats.hits += 1;
        if !records[seg_seq as usize..].is_empty() {
            // Replayed records get compacted into a fresh segment.
            self.dirty.insert(name.to_owned(), true);
        }
        Ok(())
    }

    /// Build (or rebuild) from base data: replay the whole journal into
    /// the relation rows, then build the index fresh.
    fn rebuild(
        &mut self,
        ck: &mut Checker,
        name: &str,
        records: &[Delta],
        was_rebuild: bool,
    ) -> Result<()> {
        for d in records {
            let row = self.encode_row(ck, name, d.values())?;
            let rel = ck.logical_db_mut().db_mut().relation_mut(name)?;
            let _ = match d {
                Delta::Insert(_) => rel.insert(&row)?,
                Delta::Delete(_) => rel.delete(&row)?,
            };
        }
        ck.ensure_index(name)?;
        self.stats.misses += 1;
        if was_rebuild {
            self.stats.rebuilds += 1;
        }
        self.dirty.insert(name.to_owned(), true);
        Ok(())
    }

    /// Dictionary-encode a raw tuple (interning is idempotent — journal
    /// values were interned during the warm-start pre-pass).
    fn encode_row(&self, ck: &mut Checker, name: &str, values: &[Raw]) -> Result<Vec<u32>> {
        let classes: Vec<String> = ck
            .logical_db()
            .db()
            .relation(name)?
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        Ok(values
            .iter()
            .zip(&classes)
            .map(|(v, class)| ck.logical_db_mut().db_mut().encode_value(class, v))
            .collect())
    }

    /// Durably journal one delta, then apply it through incremental
    /// maintenance. Journal-first: if the process dies after the append,
    /// the next open replays the record; if it dies mid-append, the torn
    /// tail is truncated and the delta was never acknowledged. A value
    /// outside the index's frozen domain is journaled but not applied —
    /// the typed [`CoreError::DomainOverflow`] tells the caller to reopen
    /// (the next warm start rebuilds with wider blocks).
    pub fn journaled_apply(&mut self, ck: &mut Checker, name: &str, delta: &Delta) -> Result<bool> {
        self.append_delta(name, delta)?;
        self.apply_after_journal(ck, name, delta)
    }

    /// [`IndexStore::journaled_apply`] with bounded deterministic
    /// retry-with-backoff around the journal append — the serve engine's
    /// resilience path. A transient append failure (injected fault or I/O
    /// error) first has its torn tail truncated back to the pre-append
    /// length — the caller is alive and repairing, unlike the kill -9
    /// model plain [`IndexStore::append_delta`] preserves — then the
    /// append retries after a short exponential backoff, up to
    /// `max_retries` times. Returns the retries spent alongside the
    /// apply result; on `Err` the delta was never acknowledged and the
    /// caller decides how to degrade.
    pub fn journaled_apply_retrying(
        &mut self,
        ck: &mut Checker,
        name: &str,
        delta: &Delta,
        max_retries: u64,
    ) -> (u64, Result<bool>) {
        let path = self.dir.join(journal_file_name(name));
        let mut retries = 0u64;
        loop {
            let pre_len = fs::metadata(&path).map(|m| m.len()).ok();
            // Decorrelate the failpoint key per (acknowledged-record
            // sequence, attempt): the registry decides purely from
            // (seed, site, key), so retrying under the original key
            // would fail identically forever.
            let key = if retries == 0 {
                failpoint::key_str(name)
            } else {
                let seq = self.journal_counts.get(name).copied().unwrap_or(0);
                failpoint::key_str(&format!("{name}#{seq}#retry{retries}"))
            };
            match self.append_delta_keyed(name, delta, key) {
                Ok(()) => break,
                Err(e) if retries < max_retries && transient_append_failure(&e) => {
                    self.truncate_journal_to(name, pre_len);
                    std::thread::sleep(Duration::from_millis(1 << retries.min(3)));
                    retries += 1;
                }
                Err(e) => {
                    // Give up — but still roll back the torn tail: the
                    // caller stays alive, and a later successful append
                    // landing after torn bytes would truncate away an
                    // *acknowledged* record on the next replay.
                    self.truncate_journal_to(name, pre_len);
                    return (retries, Err(e));
                }
            }
        }
        (retries, self.apply_after_journal(ck, name, delta))
    }

    /// Roll a relation's journal back to a known-good length after a
    /// failed append left a torn tail (`None` = the append created the
    /// file, so remove it). Best-effort: recovery's replay truncates torn
    /// tails anyway; this just keeps the live file appendable.
    fn truncate_journal_to(&self, name: &str, len: Option<u64>) {
        let path = self.dir.join(journal_file_name(name));
        match len {
            Some(len) => {
                if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                    let _ = f.set_len(len);
                    let _ = f.sync_all();
                }
            }
            None => {
                let _ = fs::remove_file(&path);
            }
        }
    }

    /// The post-append half of [`IndexStore::journaled_apply`]: encode,
    /// guard the frozen domain, maintain the index, mark dirty.
    fn apply_after_journal(&mut self, ck: &mut Checker, name: &str, delta: &Delta) -> Result<bool> {
        let classes: Vec<String> = ck
            .logical_db()
            .db()
            .relation(name)?
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        let row = self.encode_row(ck, name, delta.values())?;
        if ck.logical_db().has_index(name) {
            for (code, class) in row.iter().zip(&classes) {
                if u64::from(*code) >= ck.logical_db_mut().class_domain_size(class) {
                    return Err(CoreError::DomainOverflow {
                        relation: name.to_owned(),
                        class: class.clone(),
                    });
                }
            }
        }
        let changed = match delta {
            Delta::Insert(_) => ck.logical_db_mut().insert_tuple(name, &row)?,
            Delta::Delete(_) => ck.logical_db_mut().delete_tuple(name, &row)?,
        };
        // The segment on disk no longer folds the whole journal; a
        // write-back will compact the applied records into a fresh one.
        self.dirty.insert(name.to_owned(), true);
        Ok(changed)
    }

    /// Append one delta record to a relation's journal and fsync it. The
    /// `journal-append` failpoint models a kill -9 mid-append: half the
    /// record lands on disk and the append reports failure (the delta is
    /// *not* acknowledged, matching what the next open will conclude).
    pub fn append_delta(&mut self, name: &str, delta: &Delta) -> Result<()> {
        self.append_delta_keyed(name, delta, failpoint::key_str(name))
    }

    /// [`IndexStore::append_delta`] with an explicit failpoint key — the
    /// retry path varies the key per attempt so a deterministic fault
    /// decision does not condemn every retry (see
    /// [`IndexStore::journaled_apply_retrying`]).
    fn append_delta_keyed(&mut self, name: &str, delta: &Delta, fp_key: u64) -> Result<()> {
        let path = self.dir.join(journal_file_name(name));
        if !path.exists() {
            let mut f = fs::File::create(&path).map_err(|e| io_err("create", &path, &e))?;
            f.write_all(&journal_header(name))
                .and_then(|()| f.sync_all())
                .map_err(|e| io_err("write", &path, &e))?;
        }
        let record = encode_journal_record(delta);
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, &e))?;
        if failpoint::enabled() && failpoint::should_fail(failpoint::JOURNAL_APPEND, fp_key) {
            let _ = f.write_all(&record[..record.len() / 2]);
            let _ = f.sync_all();
            return Err(CoreError::Bdd(BddError::FaultInjected {
                site: failpoint::JOURNAL_APPEND,
            }));
        }
        f.write_all(&record)
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err("write", &path, &e))?;
        *self.journal_counts.entry(name.to_owned()).or_insert(0) += 1;
        Ok(())
    }

    /// Persist every index built or compacted this session: fresh
    /// segments (write-temp + fsync + atomic-rename) for dirty relations,
    /// then one atomic manifest commit. Write failures are best-effort —
    /// counted in `stats.write_failures`, never fatal.
    pub fn write_back(&mut self, ck: &mut Checker) -> Result<()> {
        let mut names: Vec<String> = ck
            .logical_db()
            .db()
            .relation_names()
            .map(str::to_owned)
            .collect();
        names.sort();
        let mut changed = false;
        for name in &names {
            if !self.dirty.get(name).copied().unwrap_or(false) {
                continue;
            }
            if ck.is_sql_only(name) || !ck.logical_db().has_index(name) {
                // Nothing durable to offer: drop any stale entry.
                if self.manifest.remove(name).is_some() {
                    changed = true;
                }
                continue;
            }
            let Some(snap) = ck.logical_db().export_index(name) else {
                self.stats.write_failures += 1;
                continue;
            };
            let seg_seq = self.journal_counts.get(name).copied().unwrap_or(0);
            let base_fp = self.base_fps.get(name).copied().unwrap_or(0);
            let meta = encode_segment_meta(name, base_fp, self.ordering_tag, seg_seq);
            let bytes = encode_frame(SEGMENT_MAGIC, FORMAT_VERSION, &meta, &snap.to_bytes());
            let seg_name = segment_file_name(name);
            match self.write_segment(name, &seg_name, &bytes) {
                Ok(()) => {
                    self.manifest.insert(
                        name.clone(),
                        ManifestEntry {
                            segment: seg_name,
                            base_fp,
                            ordering_tag: self.ordering_tag,
                            seg_seq,
                        },
                    );
                    changed = true;
                }
                Err(injected) => {
                    self.stats.write_failures += 1;
                    if injected {
                        // The fault model is "the process believed this
                        // write completed": commit the manifest entry so
                        // the next open exercises torn-segment recovery.
                        self.manifest.insert(
                            name.clone(),
                            ManifestEntry {
                                segment: seg_name,
                                base_fp,
                                ordering_tag: self.ordering_tag,
                                seg_seq,
                            },
                        );
                        changed = true;
                    }
                }
            }
        }
        if changed {
            self.commit_manifest();
        }
        Ok(())
    }

    /// Write one segment file. Returns `Err(injected)` on failure, where
    /// `injected` says whether the failure was a deliberate failpoint
    /// (which leaves a torn file at the final path) or a real I/O error.
    fn write_segment(
        &mut self,
        relation: &str,
        seg_name: &str,
        bytes: &[u8],
    ) -> std::result::Result<(), bool> {
        let final_path = self.dir.join(seg_name);
        if failpoint::enabled()
            && failpoint::should_fail(failpoint::SEGMENT_WRITE, failpoint::key_str(relation))
        {
            let _ = fs::write(&final_path, &bytes[..bytes.len() / 2]);
            return Err(true);
        }
        let tmp = self.dir.join(format!("{seg_name}.tmp"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)?;
            sync_dir(&self.dir);
            Ok(())
        };
        write().map_err(|_| {
            let _ = fs::remove_file(&tmp);
            false
        })
    }

    /// Commit the manifest atomically. The `manifest-write` failpoint
    /// models the worst commit crash: a torn manifest at the final path
    /// (as if the rename landed but the data did not).
    fn commit_manifest(&mut self) {
        let bytes = encode_manifest(&self.manifest);
        let final_path = self.manifest_path();
        if failpoint::enabled() && failpoint::should_fail(failpoint::MANIFEST_WRITE, 0) {
            let _ = fs::write(&final_path, &bytes[..bytes.len() / 2]);
            self.stats.write_failures += 1;
            return;
        }
        let tmp = self.dir.join("manifest.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)?;
            sync_dir(&self.dir);
            Ok(())
        };
        if write().is_err() {
            let _ = fs::remove_file(&tmp);
            self.stats.write_failures += 1;
        }
    }

    /// Read-only health report for every relation in `db` (plus manifest
    /// entries for relations the database no longer has, reported as
    /// stale). Performs no repairs and no truncation.
    pub fn verify(&self, db: &Database, strategy: OrderingStrategy) -> Vec<(String, VerifyStatus)> {
        let tag = ordering_tag(strategy);
        let mut names: Vec<String> = db.relation_names().map(str::to_owned).collect();
        names.sort();
        let mut out = Vec::new();
        for name in &names {
            out.push((name.clone(), self.verify_one(db, name, tag)));
        }
        out
    }

    fn verify_one(&self, db: &Database, name: &str, tag: u64) -> VerifyStatus {
        let jnl_path = self.dir.join(journal_file_name(name));
        let (records, tail) = scan_journal(&jnl_path, name);
        match tail {
            JournalTail::Torn { .. } => {
                return VerifyStatus::JournalTorn {
                    valid: records.len() as u64,
                }
            }
            JournalTail::Corrupt { offset, .. } => {
                return VerifyStatus::JournalCorrupt {
                    offset,
                    valid: records.len() as u64,
                }
            }
            JournalTail::Clean | JournalTail::Missing => {}
        }
        let Some(entry) = self.manifest.get(name) else {
            return VerifyStatus::NotCached;
        };
        let fp = match db.relation_fingerprint(name) {
            Ok(fp) => fp,
            Err(_) => return VerifyStatus::Stale,
        };
        if entry.base_fp != fp || entry.ordering_tag != tag {
            return VerifyStatus::Stale;
        }
        let seg_path = self.dir.join(&entry.segment);
        let bytes = match fs::read(&seg_path) {
            Ok(b) => b,
            Err(_) => return VerifyStatus::SegmentMissing,
        };
        let corrupt = |e: DecodeError| VerifyStatus::SegmentCorrupt {
            offset: e.offset,
            reason: e.reason.to_owned(),
        };
        let (meta, payload) = match decode_frame(&bytes, SEGMENT_MAGIC, FORMAT_VERSION) {
            Ok(mp) => mp,
            Err(e) => return corrupt(e),
        };
        let (seg_name, seg_fp, seg_tag, seg_seq) = match decode_segment_meta(meta) {
            Ok(m) => m,
            Err(e) => return corrupt(e),
        };
        if seg_name != name || seg_fp != entry.base_fp || seg_tag != entry.ordering_tag {
            return VerifyStatus::SegmentCorrupt {
                offset: 0,
                reason: "segment meta disagrees with the manifest".to_owned(),
            };
        }
        if seg_seq > records.len() as u64 {
            return VerifyStatus::JournalCorrupt {
                offset: 0,
                valid: records.len() as u64,
            };
        }
        match IndexSnapshot::from_bytes(payload) {
            Ok(_) => VerifyStatus::Ok {
                seg_seq,
                journal: records.len() as u64,
            },
            Err(CoreError::SnapshotDecode(e)) => corrupt(e),
            Err(_) => VerifyStatus::SegmentCorrupt {
                offset: 0,
                reason: "snapshot rejected".to_owned(),
            },
        }
    }

    /// Remove cache files that belong to no known relation: segments the
    /// manifest does not reference, journals of unknown relations, and
    /// leftover temp files. Returns the removed file names.
    pub fn gc(&mut self, known_relations: &[String]) -> Result<Vec<String>> {
        let live_segments: std::collections::HashSet<&str> =
            self.manifest.values().map(|e| e.segment.as_str()).collect();
        let live_journals: std::collections::HashSet<String> = known_relations
            .iter()
            .map(|n| journal_file_name(n))
            .collect();
        let mut removed = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("read", &self.dir, &e))?;
        for entry in entries.flatten() {
            let file_name = entry.file_name().to_string_lossy().into_owned();
            if file_name == "manifest" {
                continue;
            }
            let junk = if file_name.ends_with(".tmp") {
                true
            } else if file_name.ends_with(".seg") {
                !live_segments.contains(file_name.as_str())
            } else if file_name.ends_with(".jnl") {
                !live_journals.contains(&file_name)
            } else {
                false
            };
            if junk && fs::remove_file(entry.path()).is_ok() {
                removed.push(file_name);
            }
        }
        removed.sort();
        // Manifest entries whose relation no longer exists go too.
        let stale: Vec<String> = self
            .manifest
            .keys()
            .filter(|n| !known_relations.contains(n))
            .cloned()
            .collect();
        if !stale.is_empty() {
            for n in &stale {
                self.manifest.remove(n);
            }
            self.commit_manifest();
        }
        Ok(removed)
    }
}

/// fsync a directory so a rename inside it is durable (best-effort — not
/// every platform supports opening directories).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}
