//! The legacy FOL → BDD compiler facade (paper, Section 4).
//!
//! Historically this module was a 735-line monolith doing rewrite,
//! allocation, and BDD compilation in one pass. That pipeline now flows
//! through the explicit [`crate::plan::CheckPlan`] IR: [`crate::planner`]
//! turns a formula into a plan (pure, no BDD manager), [`crate::exec`]
//! executes it. This facade keeps the original two-switch API —
//! [`check_bdd`] and [`CompileOptions`] — for callers and benchmarks that
//! want the paper's exact ablation axes; [`CompileOptions`] maps onto
//! [`crate::plan::PlanOptions::from_flags`] bit-for-bit.
//!
//! With rewrites enabled (the paper's optimized strategy, §4.4) the
//! pipeline is:
//!
//! 1. prenex normal form (quantifier pull-up);
//! 2. leading-quantifier-block elimination — a leading ∀-block means the
//!    remaining formula must compile to `TRUE` (validity test), a leading
//!    ∃-block means it must not be `FALSE` (satisfiability test), both O(1)
//!    checks on the canonical ROBDD;
//! 3. universal push-down across conjunctions (Rule 5);
//! 4. recursive compilation, using **rename-based equi-joins** for relation
//!    atoms (Rule of §4.2) and the **fused `appex`/`appall`** operators for
//!    the remaining quantifiers.
//!
//! With rewrites disabled the original formula is compiled literally —
//! inner-out, unfused, leading quantifiers included — which is the
//! "straight-forward evaluation" the paper improves upon.

use crate::error::Result;
use crate::index::LogicalDatabase;
use crate::plan::{pass_rule_firings, PlanOptions};
use crate::telemetry::RuleFiring;
use relcheck_logic::Formula;

pub use crate::exec::ViolationSet;

/// Compiler switches (each is one of the paper's ablations).
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Apply the §4.4 rewrite pipeline (prenex, leading-quantifier
    /// elimination, ∀ push-down, fused quantification).
    pub use_rewrites: bool,
    /// Compile equi-joins by renaming (`BDD(R2[x/y])`, §4.2) instead of
    /// conjoining equality BDDs.
    pub join_rename: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            use_rewrites: true,
            join_rename: true,
        }
    }
}

/// Decide a constraint sentence against the database's BDD indices.
///
/// Every relation mentioned must already have an index built (the
/// [`crate::checker::Checker`] guarantees this). Propagates
/// `BddError::NodeLimit` if the manager's node budget is exhausted — the
/// signal to fall back to SQL.
pub fn check_bdd(ldb: &mut LogicalDatabase, f: &Formula, opts: &CompileOptions) -> Result<bool> {
    check_bdd_traced(ldb, f, opts, None)
}

/// [`check_bdd`] with rewrite-rule telemetry: when `rules` is provided,
/// every R1–R4 firing with a non-zero count is appended in application
/// order (R3 prenex pull-up, R1 leading-block elimination, R4 ∀ push-down,
/// then one R2 event per renamed atom).
pub fn check_bdd_traced(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    opts: &CompileOptions,
    mut rules: Option<&mut Vec<RuleFiring>>,
) -> Result<bool> {
    let options = PlanOptions::from_flags(opts.use_rewrites, opts.join_rename);
    let mut passes = Vec::new();
    let step = crate::planner::bdd_step(ldb.db(), f, options, &mut passes);
    if let Some(rs) = rules.as_deref_mut() {
        rs.extend(pass_rule_firings(&passes));
    }
    crate::exec::execute_bdd(ldb, &step, rules)
}

/// Build the violating-assignment BDD of a ∀-prefixed constraint (the BDD
/// counterpart of the SQL violation query). Returns `None` for constraints
/// that do not start with a universal block (existentials have witnesses,
/// not violations).
pub fn violations_bdd(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    opts: &CompileOptions,
) -> Result<Option<ViolationSet>> {
    crate::exec::violations_bdd(
        ldb,
        f,
        PlanOptions::from_flags(opts.use_rewrites, opts.join_rename),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::ordering::OrderingStrategy;
    use relcheck_logic::eval::eval_sentence;
    use relcheck_logic::parse;
    use relcheck_relstore::{Database, Raw};

    fn customer_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
            ],
        )
        .unwrap();
        db.create_relation(
            "ALLOWED",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Oshawa"), Raw::Int(905)],
                vec![Raw::str("Newark"), Raw::Int(973)],
            ],
        )
        .unwrap();
        db
    }

    fn ldb() -> LogicalDatabase {
        let mut l = LogicalDatabase::new(customer_db());
        l.build_index("CUST", OrderingStrategy::ProbConverge)
            .unwrap();
        l.build_index("ALLOWED", OrderingStrategy::ProbConverge)
            .unwrap();
        l
    }

    const SENTENCES: &[&str] = &[
        // Satisfied set-membership implication.
        r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647}"#,
        // Violated set-membership implication.
        r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416}"#,
        // Satisfied implication city → state.
        r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> s = "ON""#,
        // Violated: Newark maps to two states.
        r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#,
        // Inclusion dependency (violated: (Newark, 212) not allowed).
        r#"forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)"#,
        // Existence (satisfied).
        r#"exists c, a, s. CUST(c, a, s) & s = "NY""#,
        // Existence (violated).
        r#"exists c, a, s. CUST(c, a, s) & s = "QC""#,
        // FD areacode → state as FOL (satisfied: each code one state).
        r#"forall c1, a, s1, c2, s2. CUST(c1, a, s1) & CUST(c2, a, s2) -> s1 = s2"#,
        // FD city → state (violated by Newark).
        r#"forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2"#,
        // ∀∃ with join: every allowed pair has a customer.
        r#"forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)"#,
        // Mixed quantifiers with negation.
        r#"!(exists c, a, s. CUST(c, a, s) & ALLOWED(c, a) & s = "NY")"#,
        // Universally-quantified disjunction.
        r#"forall c, a, s. CUST(c, a, s) -> s = "ON" | s = "NJ" | s = "NY""#,
        // Constant outside active domain.
        r#"exists a, s. CUST("Nowhere", a, s)"#,
        // Ground sentence.
        r#""CS" = "CS""#,
    ];

    #[test]
    fn bdd_matches_brute_force_with_rewrites() {
        let mut l = ldb();
        for src in SENTENCES {
            let f = parse(src).unwrap();
            let expected = eval_sentence(l.db(), &f).unwrap();
            let got = check_bdd(&mut l, &f, &CompileOptions::default()).unwrap();
            assert_eq!(got, expected, "rewrites=on: {src}");
            l.gc();
        }
    }

    #[test]
    fn bdd_matches_brute_force_without_rewrites() {
        let mut l = ldb();
        let opts = CompileOptions {
            use_rewrites: false,
            join_rename: true,
        };
        for src in SENTENCES {
            let f = parse(src).unwrap();
            let expected = eval_sentence(l.db(), &f).unwrap();
            let got = check_bdd(&mut l, &f, &opts).unwrap();
            assert_eq!(got, expected, "rewrites=off: {src}");
            l.gc();
        }
    }

    #[test]
    fn bdd_matches_brute_force_with_naive_joins() {
        let mut l = ldb();
        let opts = CompileOptions {
            use_rewrites: true,
            join_rename: false,
        };
        for src in SENTENCES {
            let f = parse(src).unwrap();
            let expected = eval_sentence(l.db(), &f).unwrap();
            let got = check_bdd(&mut l, &f, &opts).unwrap();
            assert_eq!(got, expected, "join_rename=off: {src}");
            l.gc();
        }
    }

    #[test]
    fn every_plan_option_combination_matches_brute_force() {
        // The full 2⁶ pass-toggle space, not just the legacy two-switch
        // corners: every combination must be semantics-preserving on the
        // whole sentence corpus.
        for bits in 0u64..64 {
            let options = crate::plan::PlanOptions {
                prenex: bits & 1 != 0,
                strip_leading: bits & 2 != 0,
                pushdown: bits & 4 != 0,
                gate_pushdown: bits & 8 != 0,
                join_rename: bits & 16 != 0,
                fused_quant: bits & 32 != 0,
            };
            let mut l = ldb();
            for src in SENTENCES {
                let f = parse(src).unwrap();
                let expected = eval_sentence(l.db(), &f).unwrap();
                let mut passes = Vec::new();
                let step = crate::planner::bdd_step(l.db(), &f, options, &mut passes);
                let got = crate::exec::execute_bdd(&mut l, &step, None).unwrap();
                assert_eq!(got, expected, "options={options:?}: {src}");
                l.gc();
            }
        }
    }

    #[test]
    fn repeated_variable_in_atom() {
        // R(x, x): which cities are their own... use a self-pair relation.
        let mut db = Database::new();
        db.create_relation(
            "PAIR",
            &[("a", "k"), ("b", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(1), Raw::Int(2)],
                vec![Raw::Int(3), Raw::Int(3)],
            ],
        )
        .unwrap();
        let mut l = LogicalDatabase::new(db);
        l.build_index("PAIR", OrderingStrategy::Schema).unwrap();
        for (src, expected) in [
            ("exists x. PAIR(x, x)", true),
            ("forall x, y. PAIR(x, y) -> x = y", false),
            ("exists x, y. PAIR(x, y) & !(x = y)", true),
        ] {
            let f = parse(src).unwrap();
            assert_eq!(eval_sentence(l.db(), &f).unwrap(), expected, "oracle {src}");
            for opts in [
                CompileOptions::default(),
                CompileOptions {
                    use_rewrites: false,
                    join_rename: false,
                },
            ] {
                assert_eq!(check_bdd(&mut l, &f, &opts).unwrap(), expected, "{src}");
            }
        }
    }

    #[test]
    fn node_limit_propagates() {
        let mut l = ldb();
        let budget = l.manager().live_nodes() + 2;
        l.manager_mut().set_node_limit(Some(budget));
        let f = parse(SENTENCES[4]).unwrap();
        let err = check_bdd(&mut l, &f, &CompileOptions::default());
        assert!(matches!(
            err,
            Err(CoreError::Bdd(relcheck_bdd::BddError::NodeLimit { .. }))
        ));
    }
}
