//! The FOL → BDD compiler (paper, Section 4).
//!
//! [`check_bdd`] decides a constraint sentence by BDD manipulation. With
//! rewrites enabled (the paper's optimized strategy, §4.4) the pipeline is:
//!
//! 1. prenex normal form (quantifier pull-up);
//! 2. leading-quantifier-block elimination — a leading ∀-block means the
//!    remaining formula must compile to `TRUE` (validity test), a leading
//!    ∃-block means it must not be `FALSE` (satisfiability test), both O(1)
//!    checks on the canonical ROBDD;
//! 3. universal push-down across conjunctions (Rule 5);
//! 4. recursive compilation, using **rename-based equi-joins** for relation
//!    atoms (Rule of §4.2) and the **fused `appex`/`appall`** operators for
//!    the remaining quantifiers.
//!
//! With rewrites disabled the original formula is compiled literally —
//! inner-out, unfused, leading quantifiers included — which is the
//! "straight-forward evaluation" the paper improves upon.
//!
//! Domain hygiene: BDD blocks of `⌈log₂ n⌉` bits can encode values ≥ `n`.
//! Relation indices never contain such codes, but complements introduced by
//! negation do, so every quantifier (and the final validity /
//! satisfiability test) confines its variables with the block's range
//! constraint. This keeps BDD answers identical to active-domain semantics
//! (the brute-force oracle in `relcheck-logic`).

use crate::error::{CoreError, Result};
use crate::index::LogicalDatabase;
use crate::telemetry::{RewriteRule, RuleFiring};
use relcheck_bdd::{Bdd, DomainId, Op};
use relcheck_logic::transform::{
    push_forall_down_counted, simplify, standardize_apart, strip_leading_block, to_nnf, to_prenex,
    CheckMode, Prenex, Quant,
};
use relcheck_logic::{infer_sorts, Formula, Term};
use std::collections::HashMap;

/// Compiler switches (each is one of the paper's ablations).
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Apply the §4.4 rewrite pipeline (prenex, leading-quantifier
    /// elimination, ∀ push-down, fused quantification).
    pub use_rewrites: bool,
    /// Compile equi-joins by renaming (`BDD(R2[x/y])`, §4.2) instead of
    /// conjoining equality BDDs.
    pub join_rename: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            use_rewrites: true,
            join_rename: true,
        }
    }
}

/// Decide a constraint sentence against the database's BDD indices.
///
/// Every relation mentioned must already have an index built (the
/// [`crate::checker::Checker`] guarantees this). Propagates
/// `BddError::NodeLimit` if the manager's node budget is exhausted — the
/// signal to fall back to SQL.
pub fn check_bdd(ldb: &mut LogicalDatabase, f: &Formula, opts: &CompileOptions) -> Result<bool> {
    check_bdd_traced(ldb, f, opts, None)
}

/// [`check_bdd`] with rewrite-rule telemetry: when `rules` is provided,
/// every R1–R4 firing with a non-zero count is appended in application
/// order (R3 prenex pull-up, R1 leading-block elimination, R4 ∀ push-down,
/// then one R2 event per renamed atom).
pub fn check_bdd_traced(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    opts: &CompileOptions,
    mut rules: Option<&mut Vec<RuleFiring>>,
) -> Result<bool> {
    if opts.use_rewrites {
        let p = to_prenex(f);
        if let Some(rs) = rules.as_deref_mut() {
            if !p.prefix.is_empty() {
                rs.push(RuleFiring {
                    rule: RewriteRule::R3PrenexPullup,
                    count: p.prefix.len() as u64,
                });
            }
        }
        let whole = rebuild(&p);
        let sorts = infer_sorts(ldb.db(), &whole)?;
        let var_doms = allocate_query_domains(ldb, &whole, &sorts)?;
        let (mode, rest) = strip_leading_block(&p);
        let stripped: Vec<String> = p.prefix[..p.prefix.len() - rest.prefix.len()]
            .iter()
            .map(|(_, v)| v.clone())
            .collect();
        if let Some(rs) = rules.as_deref_mut() {
            if !stripped.is_empty() {
                rs.push(RuleFiring {
                    rule: RewriteRule::R1LeadingBlock,
                    count: stripped.len() as u64,
                });
            }
        }
        match mode {
            CheckMode::Validity => {
                let violating =
                    compile_violation_set(ldb, &rest, &stripped, &var_doms, &sorts, opts, rules)?;
                Ok(violating.is_false())
            }
            CheckMode::Satisfiability => {
                let mut pushdowns = 0u64;
                let body = simplify(&push_forall_down_counted(&rebuild(&rest), &mut pushdowns));
                if let Some(rs) = rules.as_deref_mut() {
                    if pushdowns > 0 {
                        rs.push(RuleFiring {
                            rule: RewriteRule::R4ForallPushdown,
                            count: pushdowns,
                        });
                    }
                }
                let mut c = Compiler {
                    ldb,
                    var_doms: &var_doms,
                    sorts: &sorts,
                    opts,
                    rules,
                };
                let phi = c.compile(&body)?;
                // Confine the stripped (free) variables to their domains.
                let ranges = c.ranges(&stripped)?;
                let mgr = ldb.manager_mut();
                let test = mgr.and(ranges, phi)?;
                Ok(!test.is_false())
            }
        }
    } else {
        let f = standardize_apart(f);
        let sorts = infer_sorts(ldb.db(), &f)?;
        let var_doms = allocate_query_domains(ldb, &f, &sorts)?;
        let mut c = Compiler {
            ldb,
            var_doms: &var_doms,
            sorts: &sorts,
            opts,
            rules,
        };
        let phi = c.compile(&f)?;
        debug_assert!(phi.is_const(), "a sentence must compile to a constant BDD");
        Ok(phi.is_true())
    }
}

/// The BDD of a universal constraint's **violating assignments**, built by
/// refutation: compile `¬body` in NNF (for implication-shaped constraints
/// this is the conjunction `premise ∧ ¬conclusion`, whose intermediates
/// stay small where the direct disjunction-of-complements form
/// materializes near-complement BDDs), confine the stripped ∀ variables to
/// their active domains, and conjoin. Any ∀ surviving the negation flip is
/// still pushed down (Rule 5).
fn compile_violation_set(
    ldb: &mut LogicalDatabase,
    rest: &Prenex,
    stripped: &[String],
    var_doms: &HashMap<String, DomainId>,
    sorts: &HashMap<String, String>,
    opts: &CompileOptions,
    mut rules: Option<&mut Vec<RuleFiring>>,
) -> Result<Bdd> {
    let negated = simplify(&to_nnf(&rebuild(rest).not()));
    let mut pushdowns = 0u64;
    let body = simplify(&push_forall_down_counted(&negated, &mut pushdowns));
    if let Some(rs) = rules.as_deref_mut() {
        if pushdowns > 0 {
            rs.push(RuleFiring {
                rule: RewriteRule::R4ForallPushdown,
                count: pushdowns,
            });
        }
    }
    let mut c = Compiler {
        ldb,
        var_doms,
        sorts,
        opts,
        rules,
    };
    let phi = c.compile(&body)?;
    let ranges = c.ranges(stripped)?;
    let mgr = ldb.manager_mut();
    Ok(mgr.and(ranges, phi)?)
}

/// A materialized violation set: the BDD over the constraint's outer ∀
/// variables, plus per-variable metadata for decoding.
pub struct ViolationSet {
    /// Characteristic function of the violating assignments.
    pub bdd: Bdd,
    /// `(variable name, its finite domain, its attribute class)` for every
    /// outer ∀ variable, in prefix order.
    pub vars: Vec<(String, DomainId, String)>,
}

/// Build the violating-assignment BDD of a ∀-prefixed constraint (the BDD
/// counterpart of the SQL violation query). Returns `None` for constraints
/// that do not start with a universal block (existentials have witnesses,
/// not violations).
pub fn violations_bdd(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    opts: &CompileOptions,
) -> Result<Option<ViolationSet>> {
    let p = to_prenex(f);
    let whole = rebuild(&p);
    let sorts = infer_sorts(ldb.db(), &whole)?;
    let var_doms = allocate_query_domains(ldb, &whole, &sorts)?;
    let (mode, rest) = strip_leading_block(&p);
    if mode != CheckMode::Validity {
        return Ok(None);
    }
    let stripped: Vec<String> = p.prefix[..p.prefix.len() - rest.prefix.len()]
        .iter()
        .map(|(_, v)| v.clone())
        .collect();
    let bdd = compile_violation_set(ldb, &rest, &stripped, &var_doms, &sorts, opts, None)?;
    let vars = stripped
        .into_iter()
        .map(|v| {
            let dom = var_doms[&v];
            let class = sorts[&v].clone();
            (v, dom, class)
        })
        .collect();
    Ok(Some(ViolationSet { bdd, vars }))
}

/// Reassemble a prenex form into a formula.
pub(crate) fn rebuild(p: &Prenex) -> Formula {
    let mut f = p.matrix.clone();
    for (q, v) in p.prefix.iter().rev() {
        f = match q {
            Quant::Exists => Formula::Exists(vec![v.clone()], Box::new(f)),
            Quant::Forall => Formula::Forall(vec![v.clone()], Box::new(f)),
        };
    }
    f
}

/// Assign every first-order variable a finite domain.
///
/// This is where the paper's rename rule (§4.2) pays off or doesn't: the
/// expensive case is renaming a *large* relation index into fresh query
/// domains. The paper renames R2 into R1's variables — i.e. the big
/// relation keeps its own blocks. We generalize that: walking the
/// formula's atoms **largest relation first** (positions in the relation's
/// own index ordering), each variable *claims the column domain of its
/// first unclaimed occurrence*. The biggest atom then compiles with an
/// identity rename (free), and only smaller atoms are moved. Variables that
/// cannot claim a domain (repeats, conflicts, equality-only variables) draw
/// from per-class query-domain pools in visit order, which keeps those
/// renames order-preserving too.
fn allocate_query_domains(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    sorts: &HashMap<String, String>,
) -> Result<HashMap<String, DomainId>> {
    // Gather atoms, largest relation first.
    let mut atoms: Vec<(String, Vec<Term>)> = Vec::new();
    collect_atoms(f, &mut atoms);
    atoms.sort_by_key(|(rel, _)| std::cmp::Reverse(ldb.db().relation(rel).map_or(0, |r| r.len())));
    let mut out: HashMap<String, DomainId> = HashMap::new();
    let mut claimed: std::collections::HashSet<DomainId> = std::collections::HashSet::new();
    let mut visit_order: Vec<String> = Vec::new();
    for (relation, args) in &atoms {
        let Some(idx) = ldb.index(relation) else {
            continue;
        };
        let positions = idx.ordering.clone();
        let domains = idx.domains.clone();
        for &i in &positions {
            if let Some(Term::Var(v)) = args.get(i) {
                if !visit_order.contains(v) {
                    visit_order.push(v.clone());
                }
                if !out.contains_key(v) && claimed.insert(domains[i]) {
                    out.insert(v.clone(), domains[i]);
                }
            }
        }
    }
    // Remaining variables (couldn't claim, or appear in no atom): pooled
    // query domains, allocated in visit order then by name.
    let mut rest: Vec<&String> = sorts.keys().filter(|v| !visit_order.contains(v)).collect();
    rest.sort_unstable();
    let all: Vec<String> = visit_order
        .iter()
        .cloned()
        .chain(rest.into_iter().cloned())
        .collect();
    let mut slot_of_class: HashMap<&str, usize> = HashMap::new();
    for var in &all {
        if out.contains_key(var) {
            continue;
        }
        let class = sorts[var].as_str();
        let slot = slot_of_class.entry(class).or_insert(0);
        out.insert(var.clone(), ldb.query_domain(class, *slot)?);
        *slot += 1;
    }
    Ok(out)
}

fn collect_atoms(f: &Formula, out: &mut Vec<(String, Vec<Term>)>) {
    match f {
        Formula::Atom { relation, args } => out.push((relation.clone(), args.clone())),
        Formula::Not(g) => collect_atoms(g, out),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_atoms(g, out)),
        Formula::Implies(a, b) => {
            collect_atoms(a, out);
            collect_atoms(b, out);
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect_atoms(g, out),
        _ => {}
    }
}

struct Compiler<'a> {
    ldb: &'a mut LogicalDatabase,
    var_doms: &'a HashMap<String, DomainId>,
    sorts: &'a HashMap<String, String>,
    opts: &'a CompileOptions,
    /// R2 firing sink: one event per atom compiled with ≥ 1 rename.
    rules: Option<&'a mut Vec<RuleFiring>>,
}

impl Compiler<'_> {
    fn compile(&mut self, f: &Formula) -> Result<Bdd> {
        match f {
            Formula::True => Ok(Bdd::TRUE),
            Formula::False => Ok(Bdd::FALSE),
            Formula::Atom { relation, args } => self.compile_atom(relation, args),
            Formula::Eq(a, b) => self.compile_eq(a, b),
            Formula::InSet(t, vals) => self.compile_in_set(t, vals),
            Formula::Not(g) => {
                let x = self.compile(g)?;
                Ok(self.ldb.manager_mut().not(x)?)
            }
            Formula::And(fs) => {
                let mut acc = Bdd::TRUE;
                for g in fs {
                    let x = self.compile(g)?;
                    acc = self.ldb.manager_mut().and(acc, x)?;
                    if acc.is_false() {
                        break;
                    }
                }
                Ok(acc)
            }
            Formula::Or(fs) => {
                let mut acc = Bdd::FALSE;
                for g in fs {
                    let x = self.compile(g)?;
                    acc = self.ldb.manager_mut().or(acc, x)?;
                    if acc.is_true() {
                        break;
                    }
                }
                Ok(acc)
            }
            Formula::Implies(a, b) => {
                let fa = self.compile(a)?;
                let fb = self.compile(b)?;
                Ok(self.ldb.manager_mut().imp(fa, fb)?)
            }
            Formula::Exists(vs, g) => self.compile_quant(vs, g, true),
            Formula::Forall(vs, g) => self.compile_quant(vs, g, false),
        }
    }

    /// Conjunction of range constraints for the listed variables' domains.
    fn ranges_doms(&mut self, doms: &[DomainId]) -> Result<Bdd> {
        let mut acc = Bdd::TRUE;
        for &d in doms {
            let mgr = self.ldb.manager_mut();
            let r = mgr.domain_range(d)?;
            acc = mgr.and(acc, r)?;
        }
        Ok(acc)
    }

    fn ranges(&mut self, vars: &[String]) -> Result<Bdd> {
        let doms: Vec<DomainId> = vars.iter().map(|v| self.var_doms[v]).collect();
        self.ranges_doms(&doms)
    }

    fn compile_quant(&mut self, vs: &[String], body: &Formula, is_exists: bool) -> Result<Bdd> {
        let phi = self.compile(body)?;
        let doms: Vec<DomainId> = vs.iter().map(|v| self.var_doms[v]).collect();
        let ranges = self.ranges_doms(&doms)?;
        let mgr = self.ldb.manager_mut();
        let varset = mgr.domain_varset(&doms);
        if self.opts.use_rewrites {
            // Fused apply+quantify (BuDDy's bdd_appex / bdd_appall).
            if is_exists {
                Ok(mgr.app_exists(Op::And, phi, ranges, varset)?)
            } else {
                Ok(mgr.app_forall(Op::Imp, ranges, phi, varset)?)
            }
        } else {
            // Unfused: materialize the combined function, then quantify.
            if is_exists {
                let combined = mgr.and(phi, ranges)?;
                Ok(mgr.exists(combined, varset)?)
            } else {
                let combined = mgr.imp(ranges, phi)?;
                Ok(mgr.forall(combined, varset)?)
            }
        }
    }

    fn compile_atom(&mut self, relation: &str, args: &[Term]) -> Result<Bdd> {
        let idx = self
            .ldb
            .index(relation)
            .ok_or_else(|| CoreError::MissingIndex(relation.to_owned()))?
            .clone();
        // Resolve argument actions against the database before touching the
        // manager (split borrows).
        enum Action {
            Pin(DomainId, u64),
            RenameTo(DomainId, DomainId),
            EqualTo(DomainId, DomainId),
        }
        let mut actions = Vec::with_capacity(args.len());
        {
            let db = self.ldb.db();
            let rel = db.relation(relation)?;
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for (i, t) in args.iter().enumerate() {
                let col_dom = idx.domains[i];
                match t {
                    Term::Const(raw) => {
                        let class = rel.schema().class_of(i);
                        match db.code(class, raw) {
                            // A constant outside the active domain: the atom
                            // is unsatisfiable.
                            None => return Ok(Bdd::FALSE),
                            Some(code) => actions.push(Action::Pin(col_dom, code as u64)),
                        }
                    }
                    Term::Var(v) => {
                        let var_dom = self.var_doms[v];
                        let first = seen.insert(v.as_str(), ()).is_none();
                        if first && var_dom == col_dom {
                            // The variable claimed this very column: the
                            // atom already speaks its language.
                        } else if first && self.opts.join_rename {
                            actions.push(Action::RenameTo(col_dom, var_dom));
                        } else {
                            // Repeated variable, or the naive equality-cube
                            // strategy: conjoin an equality and project the
                            // column block away.
                            actions.push(Action::EqualTo(col_dom, var_dom));
                        }
                    }
                }
            }
        }
        let mgr = self.ldb.manager_mut();
        let mut cur = idx.root;
        // 1. Pin constants (restrict: removes the block's variables).
        for a in &actions {
            if let Action::Pin(d, code) = a {
                let cube = mgr.value_cube(*d, *code)?;
                cur = mgr.restrict(cur, cube)?;
            }
        }
        // 2. Rename first-occurrence variable columns into query domains —
        //    the §4.2 rewrite: one linear-cost pass instead of equality
        //    conjunctions.
        let renames: Vec<(DomainId, DomainId)> = actions
            .iter()
            .filter_map(|a| match a {
                // Variables that claimed this very column need no move.
                Action::RenameTo(from, to) if from != to => Some((*from, *to)),
                _ => None,
            })
            .collect();
        if !renames.is_empty() {
            cur = mgr.replace_domains(cur, &renames)?;
            if let Some(rs) = self.rules.as_deref_mut() {
                rs.push(RuleFiring {
                    rule: RewriteRule::R2JoinRename,
                    count: renames.len() as u64,
                });
            }
        }
        // 3. Equality constraints for repeated variables (and for every
        //    variable under the naive strategy), then project the column
        //    blocks away.
        let mut quantify_out = Vec::new();
        for a in &actions {
            if let Action::EqualTo(col_dom, var_dom) = a {
                let eq = mgr.domain_eq(*col_dom, *var_dom)?;
                cur = mgr.and(cur, eq)?;
                quantify_out.push(*col_dom);
            }
        }
        if !quantify_out.is_empty() {
            let vs = mgr.domain_varset(&quantify_out);
            cur = mgr.exists(cur, vs)?;
        }
        Ok(cur)
    }

    fn compile_eq(&mut self, a: &Term, b: &Term) -> Result<Bdd> {
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => Ok(if x == y { Bdd::TRUE } else { Bdd::FALSE }),
            (Term::Var(v), Term::Var(w)) => {
                let (dv, dw) = (self.var_doms[v], self.var_doms[w]);
                Ok(self.ldb.manager_mut().domain_eq(dv, dw)?)
            }
            (Term::Var(v), Term::Const(raw)) | (Term::Const(raw), Term::Var(v)) => {
                let dv = self.var_doms[v];
                // The variable's class dictates constant resolution.
                let code = {
                    let class = self.class_of_var(v)?;
                    self.ldb.db().code(&class, raw)
                };
                match code {
                    None => Ok(Bdd::FALSE),
                    Some(c) => Ok(self.ldb.manager_mut().value_cube(dv, c as u64)?),
                }
            }
        }
    }

    fn compile_in_set(&mut self, t: &Term, vals: &[relcheck_relstore::Raw]) -> Result<Bdd> {
        match t {
            Term::Const(raw) => Ok(if vals.contains(raw) {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            }),
            Term::Var(v) => {
                let dv = self.var_doms[v];
                let codes: Vec<u64> = {
                    let class = self.class_of_var(v)?;
                    let db = self.ldb.db();
                    vals.iter()
                        .filter_map(|raw| db.code(&class, raw).map(|c| c as u64))
                        .collect()
                };
                Ok(self.ldb.manager_mut().value_set(dv, &codes)?)
            }
        }
    }

    /// A variable's attribute class, from the inferred sorts.
    fn class_of_var(&self, v: &str) -> Result<String> {
        Ok(self.sorts[v].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::OrderingStrategy;
    use relcheck_logic::eval::eval_sentence;
    use relcheck_logic::parse;
    use relcheck_relstore::{Database, Raw};

    fn customer_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
            ],
        )
        .unwrap();
        db.create_relation(
            "ALLOWED",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Oshawa"), Raw::Int(905)],
                vec![Raw::str("Newark"), Raw::Int(973)],
            ],
        )
        .unwrap();
        db
    }

    fn ldb() -> LogicalDatabase {
        let mut l = LogicalDatabase::new(customer_db());
        l.build_index("CUST", OrderingStrategy::ProbConverge)
            .unwrap();
        l.build_index("ALLOWED", OrderingStrategy::ProbConverge)
            .unwrap();
        l
    }

    const SENTENCES: &[&str] = &[
        // Satisfied set-membership implication.
        r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647}"#,
        // Violated set-membership implication.
        r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416}"#,
        // Satisfied implication city → state.
        r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> s = "ON""#,
        // Violated: Newark maps to two states.
        r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#,
        // Inclusion dependency (violated: (Newark, 212) not allowed).
        r#"forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)"#,
        // Existence (satisfied).
        r#"exists c, a, s. CUST(c, a, s) & s = "NY""#,
        // Existence (violated).
        r#"exists c, a, s. CUST(c, a, s) & s = "QC""#,
        // FD areacode → state as FOL (satisfied: each code one state).
        r#"forall c1, a, s1, c2, s2. CUST(c1, a, s1) & CUST(c2, a, s2) -> s1 = s2"#,
        // FD city → state (violated by Newark).
        r#"forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2"#,
        // ∀∃ with join: every allowed pair has a customer.
        r#"forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)"#,
        // Mixed quantifiers with negation.
        r#"!(exists c, a, s. CUST(c, a, s) & ALLOWED(c, a) & s = "NY")"#,
        // Universally-quantified disjunction.
        r#"forall c, a, s. CUST(c, a, s) -> s = "ON" | s = "NJ" | s = "NY""#,
        // Constant outside active domain.
        r#"exists a, s. CUST("Nowhere", a, s)"#,
        // Ground sentence.
        r#""CS" = "CS""#,
    ];

    #[test]
    fn bdd_matches_brute_force_with_rewrites() {
        let mut l = ldb();
        for src in SENTENCES {
            let f = parse(src).unwrap();
            let expected = eval_sentence(l.db(), &f).unwrap();
            let got = check_bdd(&mut l, &f, &CompileOptions::default()).unwrap();
            assert_eq!(got, expected, "rewrites=on: {src}");
            l.gc();
        }
    }

    #[test]
    fn bdd_matches_brute_force_without_rewrites() {
        let mut l = ldb();
        let opts = CompileOptions {
            use_rewrites: false,
            join_rename: true,
        };
        for src in SENTENCES {
            let f = parse(src).unwrap();
            let expected = eval_sentence(l.db(), &f).unwrap();
            let got = check_bdd(&mut l, &f, &opts).unwrap();
            assert_eq!(got, expected, "rewrites=off: {src}");
            l.gc();
        }
    }

    #[test]
    fn bdd_matches_brute_force_with_naive_joins() {
        let mut l = ldb();
        let opts = CompileOptions {
            use_rewrites: true,
            join_rename: false,
        };
        for src in SENTENCES {
            let f = parse(src).unwrap();
            let expected = eval_sentence(l.db(), &f).unwrap();
            let got = check_bdd(&mut l, &f, &opts).unwrap();
            assert_eq!(got, expected, "join_rename=off: {src}");
            l.gc();
        }
    }

    #[test]
    fn repeated_variable_in_atom() {
        // R(x, x): which cities are their own... use a self-pair relation.
        let mut db = Database::new();
        db.create_relation(
            "PAIR",
            &[("a", "k"), ("b", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(1), Raw::Int(2)],
                vec![Raw::Int(3), Raw::Int(3)],
            ],
        )
        .unwrap();
        let mut l = LogicalDatabase::new(db);
        l.build_index("PAIR", OrderingStrategy::Schema).unwrap();
        for (src, expected) in [
            ("exists x. PAIR(x, x)", true),
            ("forall x, y. PAIR(x, y) -> x = y", false),
            ("exists x, y. PAIR(x, y) & !(x = y)", true),
        ] {
            let f = parse(src).unwrap();
            assert_eq!(eval_sentence(l.db(), &f).unwrap(), expected, "oracle {src}");
            for opts in [
                CompileOptions::default(),
                CompileOptions {
                    use_rewrites: false,
                    join_rename: false,
                },
            ] {
                assert_eq!(check_bdd(&mut l, &f, &opts).unwrap(), expected, "{src}");
            }
        }
    }

    #[test]
    fn node_limit_propagates() {
        let mut l = ldb();
        let budget = l.manager().live_nodes() + 2;
        l.manager_mut().set_node_limit(Some(budget));
        let f = parse(SENTENCES[4]).unwrap();
        let err = check_bdd(&mut l, &f, &CompileOptions::default());
        assert!(matches!(
            err,
            Err(CoreError::Bdd(relcheck_bdd::BddError::NodeLimit { .. }))
        ));
    }
}
