//! Shared-manager differential suite.
//!
//! The subgraph cache (`CheckerOptions::share_subgraphs`) reuses compiled
//! atom BDDs across constraints over the same relations. Its safety
//! argument — a compiled atom is a pure function of the index root and its
//! action list — is pinned here differentially: `check_all` with sharing on
//! must agree with per-constraint compilation (sharing off) on every
//! verdict and method, serially, under 2-lane parallelism, and under fault
//! injection at the index-build site. The suite also covers the core half
//! of the ordering-invariance oracle: every ordering strategy, including
//! the workload-adaptive one, yields the same verdicts.

use relcheck_bdd::failpoint;
use relcheck_core::checker::{CheckReport, Checker, CheckerOptions, Verdict};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_datagen::customer::{generate, CustomerConfig};
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};
use std::sync::Mutex;

/// The failpoint registry is process-global; tests that arm it serialize
/// on this mutex.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Silence the default panic hook while faults are injected on purpose;
/// the panics are caught and folded into reports, the stderr noise is not.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn restore_panics() {
    let _ = std::panic::take_hook();
}

fn customer_db(rows: usize, violation_rate: f64) -> Database {
    let data = generate(&CustomerConfig {
        rows,
        dom_sizes: [40, 120, 150, 12, 200],
        violation_rate,
        seed: 31,
    });
    let mut db = Database::new();
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    let cust = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation.rows().map(|r| vec![r[0], r[2], r[3]]),
    )
    .unwrap();
    db.insert_relation("CUST", cust).unwrap();
    let cs: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    db
}

/// A battery deliberately heavy on repeated atom shapes: several
/// constraints join CUST with itself or CITY_STATE the same way, so the
/// subgraph cache has real sharing to exploit.
fn battery() -> Vec<(String, Formula)> {
    [
        (
            "reference-agrees",
            "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "city-determines-state",
            "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
        ),
        (
            "areacode-determines-state",
            "forall a, c1, s1, c2, s2. CUST(a, c1, s1) & CUST(a, c2, s2) -> s1 = s2",
        ),
        (
            "cities-are-known",
            "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
        ),
        (
            "reference-is-functional",
            "forall c, s1, s2. CITY_STATE(c, s1) & CITY_STATE(c, s2) -> s1 = s2",
        ),
        ("reference-nonempty", "exists c, s. CITY_STATE(c, s)"),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

fn opts(share: bool) -> CheckerOptions {
    CheckerOptions {
        share_subgraphs: share,
        ..Default::default()
    }
}

fn assert_same(want: &[(String, CheckReport)], got: &[(String, CheckReport)], context: &str) {
    assert_eq!(want.len(), got.len(), "{context}: length");
    for ((wn, w), (gn, g)) in want.iter().zip(got) {
        assert_eq!(wn, gn, "{context}: order");
        assert_eq!(w.verdict, g.verdict, "{context}: {wn} verdict");
        assert_eq!(w.method, g.method, "{context}: {wn} method");
    }
}

#[test]
fn sharing_matches_unshared_serially_and_actually_shares() {
    let db = customer_db(1_500, 0.01);
    let battery = battery();
    let mut unshared = Checker::new(db.clone(), opts(false));
    let want = unshared.check_all(&battery).unwrap();
    assert_eq!(
        unshared.logical_db().atom_cache_stats(),
        (0, 0),
        "escape hatch must not touch the cache"
    );
    let mut shared = Checker::new(db, opts(true));
    let got = shared.check_all(&battery).unwrap();
    assert_same(&want, &got, "serial");
    let (hits, misses) = shared.logical_db().atom_cache_stats();
    assert!(
        hits > 0,
        "the battery repeats atom shapes; sharing must fire (hits={hits}, misses={misses})"
    );
}

#[test]
fn sharing_matches_unshared_across_parallel_lanes() {
    let db = customer_db(1_200, 0.02);
    let battery = battery();
    let mut baseline = Checker::new(db.clone(), opts(false));
    let want = baseline.check_all(&battery).unwrap();
    for share in [false, true] {
        let mut ck = Checker::new(db.clone(), opts(share));
        let got = ck.check_all_parallel(&battery, 2).unwrap();
        assert_same(&want, &got, &format!("parallel share={share}"));
    }
}

#[test]
fn sharing_matches_unshared_under_index_build_faults() {
    let _g = lock();
    quiet_panics();
    let db = customer_db(900, 0.02);
    let battery = battery();
    // Fault-free reference for the resilience invariant.
    let clean = Checker::new(db.clone(), opts(false))
        .check_all(&battery)
        .unwrap();
    for seed in [3u64, 11, 27] {
        failpoint::configure_spec("index-build=0.6", seed).unwrap();
        let want = Checker::new(db.clone(), opts(false))
            .check_all(&battery)
            .unwrap();
        let got = Checker::new(db.clone(), opts(true))
            .check_all(&battery)
            .unwrap();
        failpoint::clear();
        restore_panics();
        // Same seed ⇒ same injected faults ⇒ shared and unshared must walk
        // the same ladder to the same answers.
        assert_same(&want, &got, &format!("faults seed={seed}"));
        // And the usual resilience invariant: never silently wrong.
        for ((name, r), (_, c)) in got.iter().zip(&clean) {
            match r.verdict {
                Verdict::Holds | Verdict::Violated => {
                    assert_eq!(r.verdict, c.verdict, "seed {seed}: {name} silently wrong")
                }
                Verdict::Degraded | Verdict::Errored => {}
            }
        }
    }
}

#[test]
fn every_ordering_strategy_agrees_including_adaptive() {
    let db = customer_db(1_000, 0.015);
    let battery = battery();
    let mut baseline = Checker::new(db.clone(), opts(true));
    let want = baseline.check_all(&battery).unwrap();
    for strategy in [
        OrderingStrategy::Schema,
        OrderingStrategy::Random(5),
        OrderingStrategy::MaxInfGain,
        OrderingStrategy::MinCondEntropy,
        OrderingStrategy::Adaptive,
    ] {
        let mut ck = Checker::new(
            db.clone(),
            CheckerOptions {
                ordering: strategy,
                ..Default::default()
            },
        );
        let got = ck.check_all(&battery).unwrap();
        assert_same(&want, &got, strategy.name());
    }
}

#[test]
fn adaptive_rebuild_uses_recorded_workload_and_keeps_verdicts() {
    let db = customer_db(1_000, 0.015);
    let battery = battery();
    let mut ck = Checker::new(
        db,
        CheckerOptions {
            ordering: OrderingStrategy::Adaptive,
            ..Default::default()
        },
    );
    // First pass: indices are built before any workload exists (static
    // fallback), and the checks record column usage.
    let want = ck.check_all(&battery).unwrap();
    assert!(ck.logical_db().adaptive_pick("CUST").is_none());
    assert!(ck.logical_db().column_weights("CUST").is_some());
    // Rebuild from the recorded workload: the adaptive scorer now picks a
    // candidate shape, and verdicts must not move.
    assert!(ck.rebuild_index("CUST").unwrap());
    let picked = ck
        .logical_db()
        .adaptive_pick("CUST")
        .expect("adaptive rebuild must score the workload");
    assert!(["static", "concatenated", "frequency", "interleaved"].contains(&picked));
    let got = ck.check_all(&battery).unwrap();
    assert_same(&want, &got, "adaptive rebuild");
}
