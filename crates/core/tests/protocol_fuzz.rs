//! Protocol-hardening fuzz suite for the serve wire layer: a
//! SplitMix64-driven mutation fuzzer feeding [`sanitize_line`],
//! [`parse_command`]/[`parse_delta`], and a live [`ServeEngine`] with
//! hostile input — oversized lines, invalid UTF-8, embedded NULs,
//! truncated and spliced deltas, byte flips, and pathological repeats.
//!
//! The contract under fuzz: **no panic, ever, and every rejection is a
//! typed error** — `sanitize_line` returns a message, `parse_command`
//! returns a message, and the engine's reply lines for garbage start
//! with `err `. The engine must also stay *usable*: after any amount of
//! garbage, a well-formed `check` still answers.
//!
//! [`sanitize_line`]: relcheck_core::serve::sanitize_line
//! [`parse_command`]: relcheck_core::serve::parse_command
//! [`parse_delta`]: relcheck_core::serve::parse_delta

use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::serve::{parse_command, parse_delta, sanitize_line, ServeEngine};
use relcheck_datagen::SplitMix64;
use relcheck_logic::parse;
use relcheck_relstore::{Database, Raw};

/// Line cap for the fuzz run: small enough that the oversized-line
/// mutator actually trips it, large enough that most mutants pass.
const CAP: usize = 256;

/// Seed corpus: every protocol production, plus comments and blanks.
const CORPUS: [&str; 12] = [
    "+R:1,2",
    "-R:1,2",
    "+S:3",
    "-S:0",
    "check",
    "check r-diagonal",
    "certify",
    "certify r-diagonal",
    "stats",
    "quit",
    "# a comment line",
    "",
];

/// Bytes the mutators inject: NUL, an invalid UTF-8 continuation, a
/// lone high bit, protocol metacharacters, and plain ASCII.
const INJECT: [u8; 10] = [0x00, 0x80, 0xC3, 0xFF, b'+', b'-', b':', b',', b' ', b'Z'];

fn mutate(rng: &mut SplitMix64) -> Vec<u8> {
    let mut bytes: Vec<u8> = CORPUS[rng.gen_range(0usize..CORPUS.len())]
        .as_bytes()
        .to_vec();
    for _ in 0..rng.gen_range(0u64..4) {
        match rng.gen_range(0u64..6) {
            // Flip one byte to an injected value.
            0 if !bytes.is_empty() => {
                let at = rng.gen_range(0usize..bytes.len());
                bytes[at] = INJECT[rng.gen_range(0usize..INJECT.len())];
            }
            // Truncate mid-token (torn deltas, half commands).
            1 if !bytes.is_empty() => {
                bytes.truncate(rng.gen_range(0usize..bytes.len()));
            }
            // Insert an injected byte.
            2 => {
                let at = rng.gen_range(0usize..bytes.len() + 1);
                bytes.insert(at, INJECT[rng.gen_range(0usize..INJECT.len())]);
            }
            // Splice another corpus entry on (no separator).
            3 => {
                bytes.extend_from_slice(CORPUS[rng.gen_range(0usize..CORPUS.len())].as_bytes());
            }
            // Pathological repeat, occasionally far past the cap.
            4 => {
                let unit = INJECT[rng.gen_range(0usize..INJECT.len())];
                let n = if rng.gen_bool(0.2) {
                    CAP + rng.gen_range(1usize..2 * CAP)
                } else {
                    rng.gen_range(1usize..32)
                };
                bytes.extend(std::iter::repeat_n(unit, n));
            }
            // Leave as-is (valid lines must keep working mid-fuzz).
            _ => {}
        }
    }
    bytes
}

fn fuzz_engine() -> ServeEngine {
    let mut db = Database::new();
    db.create_relation(
        "R",
        &[("x", "k"), ("y", "k")],
        vec![
            vec![Raw::Int(1), Raw::Int(1)],
            vec![Raw::Int(2), Raw::Int(2)],
        ],
    )
    .unwrap();
    db.create_relation("S", &[("x", "k")], vec![vec![Raw::Int(1)]])
        .unwrap();
    for v in 0..8 {
        db.encode_value("k", &Raw::Int(v));
    }
    let constraints = vec![
        (
            "r-diagonal".to_owned(),
            parse("forall x, y. R(x, y) -> x = y").unwrap(),
        ),
        (
            "r-covers-s".to_owned(),
            parse("forall x. S(x) -> exists y. R(x, y)").unwrap(),
        ),
    ];
    let (engine, _) = ServeEngine::new(
        Checker::new(db, CheckerOptions::default()),
        &constraints,
        None,
    )
    .unwrap();
    engine
}

#[test]
fn mutated_protocol_lines_never_panic_and_always_err_typed() {
    let mut engine = fuzz_engine();
    for seed in [1u64, 42, 20070415] {
        let mut rng = SplitMix64::seed_from_u64(seed);
        for step in 0..4000 {
            let context = format!("seed {seed} step {step}");
            let bytes = mutate(&mut rng);
            // Layer 1: the wire decoder. Its accept/reject decision must
            // exactly match its documented contract.
            let sanitized = sanitize_line(&bytes, CAP);
            let should_reject =
                bytes.len() > CAP || bytes.contains(&0) || std::str::from_utf8(&bytes).is_err();
            match &sanitized {
                Ok(line) => {
                    assert!(!should_reject, "{context}: accepted a hostile line");
                    assert!(
                        !line.ends_with(['\r', '\n']),
                        "{context}: newline not stripped"
                    );
                    // Layer 2: the parser — a typed message or a command,
                    // never a panic.
                    if let Err(msg) = parse_command(line) {
                        assert!(!msg.is_empty(), "{context}: untyped parse error");
                    }
                    // Layer 3: the live engine answers every sanitized
                    // line; rejections are `err `-typed reply lines.
                    let reply = engine.handle_line(line);
                    for l in &reply.lines {
                        assert!(!l.is_empty(), "{context}: empty reply line");
                    }
                    if parse_command(line).is_err() {
                        assert!(
                            reply.lines.iter().all(|l| l.starts_with("err ")),
                            "{context}: garbage answered without err: {:?}",
                            reply.lines
                        );
                    }
                }
                Err(msg) => {
                    assert!(should_reject, "{context}: rejected a clean line: {msg}");
                    assert!(!msg.is_empty(), "{context}: untyped sanitize error");
                }
            }
        }
        // The engine survived the storm in working order.
        let reply = engine.handle_line("check");
        assert!(
            reply
                .lines
                .last()
                .is_some_and(|l| l.starts_with("ok check ")),
            "seed {seed}: engine unusable after fuzzing: {:?}",
            reply.lines
        );
    }
}

#[test]
fn truncated_deltas_are_typed_errors() {
    // Every strict prefix of a valid delta is either a shorter valid
    // delta or a typed parse error — never a panic.
    let full = "+R:1,2";
    for end in 0..full.len() {
        let prefix = &full[..end];
        match parse_command(prefix) {
            Ok(_) => {}
            Err(msg) => assert!(!msg.is_empty(), "untyped error for prefix {prefix:?}"),
        }
        if !prefix.is_empty() && prefix != "+" && prefix != "-" {
            // parse_delta itself (the CLI `index apply` entry) too.
            if let Err(msg) = parse_delta(prefix) {
                assert!(!msg.is_empty());
            }
        }
    }
}
