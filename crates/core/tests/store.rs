//! Crash-safety acceptance tests for the persistent index store: the
//! warm-start differential (a warm checker answers exactly like a cold
//! one), journaled incremental maintenance with compaction, and — the
//! robustness core — corruption fuzzing: truncations, bit flips, torn
//! tails, stale fingerprints, domain growth, and failpoint-injected
//! partial writes must all be *detected* (typed recovery records, never a
//! panic) and *recovered* (rebuild from base data, never a wrong verdict).
//!
//! The failpoint registry is process-global, so every test serializes on
//! one mutex (cheap: each test runs in milliseconds on these tiny
//! relations).

use relcheck_bdd::failpoint;
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_core::registry::{ConstraintRegistry, Verdict};
use relcheck_core::store::{
    encode_journal_record, journal_file_name, journal_header, segment_file_name, Delta, IndexStore,
    VerifyStatus,
};
use relcheck_core::telemetry::recovery_reason;
use relcheck_core::CoreError;
use relcheck_relstore::{Database, Raw};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Clears the global failpoint registry on drop, so an assertion failure
/// mid-test cannot leave later tests running under injected faults.
struct FpGuard;

impl Drop for FpGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "relcheck-store-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The working database: customers and a reference table sharing the
/// `city`/`area` classes. One customer row (Toronto, 212) is absent from
/// the reference, so `cust-in-ref` is violated out of the box — a live
/// signal that recovered verdicts really track the data.
fn base_rows() -> Vec<Vec<Raw>> {
    vec![
        vec![Raw::str("Toronto"), Raw::Int(416)],
        vec![Raw::str("Toronto"), Raw::Int(647)],
        vec![Raw::str("Newark"), Raw::Int(973)],
        vec![Raw::str("Toronto"), Raw::Int(212)],
    ]
}

fn make_db(cust_rows: Vec<Vec<Raw>>) -> Database {
    let mut db = Database::new();
    db.create_relation("CUST", &[("city", "city"), ("area", "area")], cust_rows)
        .unwrap();
    db.create_relation(
        "REF",
        &[("city", "city"), ("area", "area")],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416)],
            vec![Raw::str("Toronto"), Raw::Int(647)],
            vec![Raw::str("Newark"), Raw::Int(973)],
        ],
    )
    .unwrap();
    db
}

const CONSTRAINTS: [&str; 2] = [
    "forall c, a. CUST(c, a) -> REF(c, a)",
    "forall c, a. REF(c, a) -> exists b. CUST(c, b)",
];

fn checker(db: Database) -> Checker {
    Checker::new(db, CheckerOptions::default())
}

/// All constraint verdicts, in order — the differential signature.
fn verdicts(ck: &mut Checker) -> Vec<bool> {
    CONSTRAINTS
        .iter()
        .map(|c| ck.check(&relcheck_logic::parse(c).unwrap()).unwrap().holds)
        .collect()
}

/// What a cold start over `cust_rows` answers; every recovery path must
/// reproduce this exactly.
fn cold_verdicts(cust_rows: Vec<Vec<Raw>>) -> Vec<bool> {
    verdicts(&mut checker(make_db(cust_rows)))
}

/// Populate `dir` from the base database and return the cold verdicts.
fn build_cache(dir: &std::path::Path) -> Vec<bool> {
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let v = verdicts(&mut ck);
    store.write_back(&mut ck).unwrap();
    assert_eq!(store.stats.write_failures, 0);
    v
}

fn reasons(store: &IndexStore) -> Vec<&'static str> {
    store.stats.recoveries.iter().map(|r| r.reason).collect()
}

#[test]
fn warm_start_matches_cold_and_hits_cleanly() {
    let _g = lock();
    let dir = scratch("warm");
    let cold = build_cache(&dir);
    assert_eq!(cold, vec![false, true]);

    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(
        (store.stats.hits, store.stats.misses, store.stats.rebuilds),
        (2, 0, 0)
    );
    assert_eq!(store.stats.journal_replayed, 0);
    assert!(store.stats.recoveries.is_empty());
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journaled_apply_replays_and_compacts() {
    let _g = lock();
    let dir = scratch("journal");
    build_cache(&dir);

    // Session 2: warm hit, then two durable deltas — the journal record
    // lands (fsynced) before the in-memory state changes. Deleting the
    // rogue (Toronto, 212) row flips `cust-in-ref` to holding.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let del = Delta::Delete(vec![Raw::str("Toronto"), Raw::Int(212)]);
    let ins = Delta::Insert(vec![Raw::str("Newark"), Raw::Int(416)]);
    assert!(store.journaled_apply(&mut ck, "CUST", &del).unwrap());
    assert!(store.journaled_apply(&mut ck, "CUST", &ins).unwrap());
    let expected_rows = vec![
        vec![Raw::str("Toronto"), Raw::Int(416)],
        vec![Raw::str("Toronto"), Raw::Int(647)],
        vec![Raw::str("Newark"), Raw::Int(973)],
        vec![Raw::str("Newark"), Raw::Int(416)],
    ];
    let want = cold_verdicts(expected_rows.clone());
    assert_eq!(want, vec![false, true]); // (Newark,416) is not in REF
    assert_eq!(verdicts(&mut ck), want);
    // Deliberately NO write_back: the segment on disk still predates the
    // two journal records (seg_seq = 0).

    // Session 3: the hit replays both records through incremental
    // maintenance, then write_back compacts them into a fresh segment.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.hits, 2);
    assert_eq!(store.stats.journal_replayed, 2);
    assert_eq!(verdicts(&mut ck), want);
    store.write_back(&mut ck).unwrap();

    // Session 4: compacted — the segment folds the journal, nothing to
    // replay, same verdicts.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.hits, 2);
    assert_eq!(store.stats.journal_replayed, 0);
    assert!(store.stats.recoveries.is_empty());
    assert_eq!(verdicts(&mut ck), want);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_truncation_always_detected_and_recovered() {
    let _g = lock();
    let dir = scratch("seg-trunc");
    let cold = build_cache(&dir);
    let seg = dir.join(segment_file_name("CUST"));
    let original = fs::read(&seg).unwrap();
    for cut in [
        0,
        1,
        7,
        original.len() / 4,
        original.len() / 2,
        original.len() - 1,
    ] {
        fs::write(&seg, &original[..cut]).unwrap();
        let mut ck = checker(make_db(base_rows()));
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        assert_eq!(store.stats.rebuilds, 1, "cut at {cut} went undetected");
        assert_eq!(store.stats.hits, 1); // REF is untouched
        assert_eq!(reasons(&store), vec![recovery_reason::SEGMENT_CORRUPT]);
        assert!(
            store.stats.recoveries[0].detail.contains("offset"),
            "recovery detail should locate the damage: {}",
            store.stats.recoveries[0].detail
        );
        assert_eq!(verdicts(&mut ck), cold, "cut at {cut} changed a verdict");
        fs::write(&seg, &original).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_bit_flips_always_detected_and_recovered() {
    let _g = lock();
    let dir = scratch("seg-flip");
    let cold = build_cache(&dir);
    let seg = dir.join(segment_file_name("CUST"));
    let original = fs::read(&seg).unwrap();
    // Sample byte positions across the whole file (header, meta, payload);
    // the stride is coprime with 8 so the flipped bit index varies too.
    for pos in (0..original.len()).step_by(5) {
        let mut corrupt = original.clone();
        corrupt[pos] ^= 1 << (pos % 8);
        fs::write(&seg, &corrupt).unwrap();
        let mut ck = checker(make_db(base_rows()));
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        assert_eq!(
            store.stats.rebuilds, 1,
            "bit flip at byte {pos} went undetected"
        );
        assert_eq!(reasons(&store), vec![recovery_reason::SEGMENT_CORRUPT]);
        assert_eq!(
            verdicts(&mut ck),
            cold,
            "bit flip at byte {pos} changed a verdict"
        );
    }
    fs::write(&seg, &original).unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Append raw bytes to a relation's journal, creating it (with a valid
/// header) if needed — simulating appends from a previous session.
fn append_journal_bytes(dir: &std::path::Path, relation: &str, bytes: &[u8]) {
    let path = dir.join(journal_file_name(relation));
    let mut buf = if path.exists() {
        fs::read(&path).unwrap()
    } else {
        journal_header(relation)
    };
    buf.extend_from_slice(bytes);
    fs::write(&path, buf).unwrap();
}

#[test]
fn torn_journal_tail_is_truncated_and_replay_keeps_prefix() {
    let _g = lock();
    let dir = scratch("jnl-torn");
    build_cache(&dir);
    let del = Delta::Delete(vec![Raw::str("Toronto"), Raw::Int(212)]);
    let ins = Delta::Insert(vec![Raw::str("Newark"), Raw::Int(416)]);
    append_journal_bytes(&dir, "CUST", &encode_journal_record(&del));
    let partial = encode_journal_record(&ins);
    append_journal_bytes(&dir, "CUST", &partial[..partial.len() / 2]);

    // The torn tail is discarded; the intact first record replays. The
    // half-written insert was never acknowledged, so the expected state
    // is base-minus-(Toronto,212) — which makes every constraint hold.
    let want = cold_verdicts(base_rows()[..3].to_vec());
    assert_eq!(want, vec![true, true]);
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(reasons(&store), vec![recovery_reason::JOURNAL_TORN]);
    assert_eq!(store.stats.journal_replayed, 1);
    assert_eq!(store.stats.hits, 2);
    assert_eq!(verdicts(&mut ck), want);

    // The truncation was persisted: a fresh scan is clean.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert!(store.stats.recoveries.is_empty());
    assert_eq!(verdicts(&mut ck), want);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_bit_flip_discards_the_damaged_suffix() {
    let _g = lock();
    let dir = scratch("jnl-flip");
    build_cache(&dir);
    let del = Delta::Delete(vec![Raw::str("Toronto"), Raw::Int(212)]);
    let ins = Delta::Insert(vec![Raw::str("Newark"), Raw::Int(416)]);
    append_journal_bytes(&dir, "CUST", &encode_journal_record(&del));
    append_journal_bytes(&dir, "CUST", &encode_journal_record(&ins));
    // Flip one bit inside the *first* record's body: everything from the
    // damage onward is untrusted, so no record survives.
    let path = dir.join(journal_file_name("CUST"));
    let mut bytes = fs::read(&path).unwrap();
    let hdr = journal_header("CUST").len();
    bytes[hdr + 10] ^= 0x10;
    fs::write(&path, bytes).unwrap();

    let cold = cold_verdicts(base_rows());
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(reasons(&store), vec![recovery_reason::JOURNAL_CORRUPT]);
    assert_eq!(store.stats.journal_replayed, 0);
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_fingerprint_forces_rebuild() {
    let _g = lock();
    let dir = scratch("stale");
    build_cache(&dir);
    // The base CSV gained a row since the cache was written: the cached
    // CUST segment is stale; REF is unchanged and still hits.
    let mut grown = base_rows();
    grown.push(vec![Raw::str("Newark"), Raw::Int(647)]);
    let cold = cold_verdicts(grown.clone());
    let mut ck = checker(make_db(grown));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(reasons(&store), vec![recovery_reason::STALE_FINGERPRINT]);
    assert_eq!((store.stats.hits, store.stats.rebuilds), (1, 1));
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ordering_change_invalidates_segments() {
    let _g = lock();
    let dir = scratch("ordering");
    build_cache(&dir); // default ordering (ProbConverge)
    let cold = {
        let mut ck = Checker::new(
            make_db(base_rows()),
            CheckerOptions {
                ordering: OrderingStrategy::MaxInfGain,
                ..Default::default()
            },
        );
        verdicts(&mut ck)
    };
    let mut ck = Checker::new(
        make_db(base_rows()),
        CheckerOptions {
            ordering: OrderingStrategy::MaxInfGain,
            ..Default::default()
        },
    );
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.hits, 0);
    assert_eq!(store.stats.rebuilds, 2);
    assert!(reasons(&store)
        .iter()
        .all(|r| *r == recovery_reason::STALE_FINGERPRINT));
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_opens_empty_and_self_heals() {
    let _g = lock();
    let dir = scratch("manifest");
    let cold = build_cache(&dir);
    let path = dir.join("manifest");
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    assert_eq!(reasons(&store), vec![recovery_reason::MANIFEST_CORRUPT]);
    assert_eq!(store.stats.recoveries[0].relation, "*");
    store.warm_start(&mut ck).unwrap();
    assert_eq!((store.stats.hits, store.stats.misses), (0, 2));
    assert_eq!(verdicts(&mut ck), cold);
    store.write_back(&mut ck).unwrap();

    // The rebuild re-committed a clean manifest: warm again.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert!(store.stats.recoveries.is_empty());
    assert_eq!(store.stats.hits, 2);
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_segment_write_recovers_on_next_open() {
    let _g = lock();
    let _fp = FpGuard;
    let dir = scratch("fp-seg");
    let cold = cold_verdicts(base_rows());

    // A kill mid-segment-write: half the bytes land at the final path,
    // but the manifest (the commit point) already names the segment.
    failpoint::configure_spec("segment-write=1", 0xC0FFEE).unwrap();
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    store.write_back(&mut ck).unwrap();
    assert_eq!(store.stats.write_failures, 2);
    failpoint::clear();

    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.rebuilds, 2);
    assert!(reasons(&store)
        .iter()
        .all(|r| *r == recovery_reason::SEGMENT_CORRUPT));
    assert_eq!(verdicts(&mut ck), cold);
    store.write_back(&mut ck).unwrap();
    assert_eq!(store.stats.write_failures, 0);

    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.hits, 2);
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_append_is_never_acknowledged() {
    let _g = lock();
    let _fp = FpGuard;
    let dir = scratch("fp-jnl");
    let cold = build_cache(&dir);

    failpoint::configure_spec("journal-append=1", 0xC0FFEE).unwrap();
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let del = Delta::Delete(vec![Raw::str("Toronto"), Raw::Int(212)]);
    let err = store.journaled_apply(&mut ck, "CUST", &del).unwrap_err();
    assert!(matches!(err, CoreError::Bdd(_)), "got {err}");
    failpoint::clear();

    // The delta failed before acknowledgment, so recovery must converge
    // on the *original* state: torn tail truncated, verdicts unchanged.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(reasons(&store), vec![recovery_reason::JOURNAL_TORN]);
    assert_eq!(store.stats.hits, 2);
    assert_eq!(store.stats.journal_replayed, 0);
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_manifest_commit_recovers_on_next_open() {
    let _g = lock();
    let _fp = FpGuard;
    let dir = scratch("fp-manifest");
    let cold = cold_verdicts(base_rows());

    failpoint::configure_spec("manifest-write=1", 0xC0FFEE).unwrap();
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    store.write_back(&mut ck).unwrap();
    assert!(store.stats.write_failures >= 1);
    failpoint::clear();

    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    assert_eq!(reasons(&store), vec![recovery_reason::MANIFEST_CORRUPT]);
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.misses, 2);
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journaled_value_outside_the_frozen_domain_rebuilds_wider() {
    let _g = lock();
    let dir = scratch("overflow");
    build_cache(&dir);
    // A previous session journaled a brand-new city: the cached segments'
    // city blocks are one value too narrow for the post-replay domain.
    let ins = Delta::Insert(vec![Raw::str("Ottawa"), Raw::Int(416)]);
    append_journal_bytes(&dir, "CUST", &encode_journal_record(&ins));

    let mut with_ottawa = base_rows();
    with_ottawa.push(vec![Raw::str("Ottawa"), Raw::Int(416)]);
    let cold = cold_verdicts(with_ottawa);
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert!(
        reasons(&store).contains(&recovery_reason::DOMAIN_OVERFLOW),
        "expected a domain-overflow recovery, got {:?}",
        store.stats.recoveries
    );
    assert_eq!(verdicts(&mut ck), cold);
    store.write_back(&mut ck).unwrap();

    // The rebuilt segments use the widened domain: clean hits now.
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.hits, 2);
    assert!(store.stats.recoveries.is_empty());
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn in_process_overflow_is_journaled_but_typed() {
    let _g = lock();
    let dir = scratch("overflow-live");
    build_cache(&dir);
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let ins = Delta::Insert(vec![Raw::str("Ottawa"), Raw::Int(416)]);
    let err = store.journaled_apply(&mut ck, "CUST", &ins).unwrap_err();
    assert!(matches!(err, CoreError::DomainOverflow { .. }), "got {err}");
    // Journal-first means the record is already durable; the next warm
    // start folds it in by rebuilding with wider blocks.
    let mut with_ottawa = base_rows();
    with_ottawa.push(vec![Raw::str("Ottawa"), Raw::Int(416)]);
    let cold = cold_verdicts(with_ottawa);
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert!(reasons(&store).contains(&recovery_reason::DOMAIN_OVERFLOW));
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_removes_orphans_and_keeps_the_live_cache() {
    let _g = lock();
    let dir = scratch("gc");
    let cold = build_cache(&dir);
    fs::write(dir.join("GHOST-0000000000000000.seg"), b"junk").unwrap();
    fs::write(dir.join("GHOST-0000000000000000.jnl"), b"junk").unwrap();
    fs::write(dir.join("leftover.seg.tmp"), b"junk").unwrap();

    let mut store = IndexStore::open(&dir).unwrap();
    let known = vec!["CUST".to_owned(), "REF".to_owned()];
    let removed = store.gc(&known).unwrap();
    assert_eq!(
        removed,
        vec![
            "GHOST-0000000000000000.jnl".to_owned(),
            "GHOST-0000000000000000.seg".to_owned(),
            "leftover.seg.tmp".to_owned(),
        ]
    );
    assert!(dir.join(segment_file_name("CUST")).exists());

    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(store.stats.hits, 2);
    assert_eq!(verdicts(&mut ck), cold);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_reports_each_failure_mode_read_only() {
    let _g = lock();
    let dir = scratch("verify");
    let db = make_db(base_rows());
    let strategy = OrderingStrategy::ProbConverge;

    let store = IndexStore::open(&dir).unwrap();
    assert!(store
        .verify(&db, strategy)
        .iter()
        .all(|(_, s)| *s == VerifyStatus::NotCached));

    build_cache(&dir);
    let store = IndexStore::open(&dir).unwrap();
    assert!(store
        .verify(&db, strategy)
        .iter()
        .all(|(_, s)| matches!(s, VerifyStatus::Ok { .. })));

    // Stale: the database grew a row.
    let mut grown = base_rows();
    grown.push(vec![Raw::str("Newark"), Raw::Int(647)]);
    let grown_db = make_db(grown);
    let by_name = |statuses: Vec<(String, VerifyStatus)>, name: &str| {
        statuses.into_iter().find(|(n, _)| n == name).unwrap().1
    };
    assert_eq!(
        by_name(store.verify(&grown_db, strategy), "CUST"),
        VerifyStatus::Stale
    );

    // Corrupt: flip a byte mid-segment.
    let seg = dir.join(segment_file_name("CUST"));
    let original = fs::read(&seg).unwrap();
    let mut corrupt = original.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x04;
    fs::write(&seg, &corrupt).unwrap();
    assert!(matches!(
        by_name(store.verify(&db, strategy), "CUST"),
        VerifyStatus::SegmentCorrupt { .. }
    ));
    fs::write(&seg, &original).unwrap();

    // Missing: the manifest references a file that is gone.
    fs::remove_file(&seg).unwrap();
    assert_eq!(
        by_name(store.verify(&db, strategy), "CUST"),
        VerifyStatus::SegmentMissing
    );

    // Torn journal: verify reports it and — read-only — repairs nothing.
    let rec = encode_journal_record(&Delta::Delete(vec![Raw::str("Toronto"), Raw::Int(212)]));
    append_journal_bytes(&dir, "REF", &rec[..rec.len() / 2]);
    let jnl_len = fs::metadata(dir.join(journal_file_name("REF")))
        .unwrap()
        .len();
    assert_eq!(
        by_name(store.verify(&db, strategy), "REF"),
        VerifyStatus::JournalTorn { valid: 0 }
    );
    assert_eq!(
        fs::metadata(dir.join(journal_file_name("REF")))
            .unwrap()
            .len(),
        jnl_len
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn registry_revalidates_exactly_the_touched_constraints() {
    let _g = lock();
    let dir = scratch("registry");
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();

    let mut reg = ConstraintRegistry::new();
    assert!(reg.register(
        "cust-in-ref",
        relcheck_logic::parse(CONSTRAINTS[0]).unwrap()
    ));
    assert!(reg.register(
        "ref-covered",
        relcheck_logic::parse(CONSTRAINTS[1]).unwrap()
    ));
    reg.validate_all(&mut ck).unwrap();

    // One durable delta to CUST: the CUST-reading constraints re-check
    // (the rogue row is gone, so cust-in-ref now holds)…
    let del = Delta::Delete(vec![Raw::str("Toronto"), Raw::Int(212)]);
    let round = reg
        .revalidate_after_deltas(&mut ck, &mut store, &[("CUST".to_owned(), del)])
        .unwrap();
    let by_name: std::collections::HashMap<_, _> = round.into_iter().collect();
    assert!(matches!(
        by_name["cust-in-ref"],
        Verdict::Checked { holds: true }
    ));
    assert!(matches!(by_name["ref-covered"], Verdict::Checked { .. }));
    store.write_back(&mut ck).unwrap();

    // …and the delta survives the restart: a fresh warm start agrees.
    let want = cold_verdicts(base_rows()[..3].to_vec());
    let mut ck = checker(make_db(base_rows()));
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(verdicts(&mut ck), want);
    let _ = fs::remove_dir_all(&dir);
}
