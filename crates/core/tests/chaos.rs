//! Chaos soak: long-running randomized serve sessions under fault
//! injection at every failpoint site, with tight node budgets and
//! deadlines — and after every certify pass, the trust-but-verify
//! invariants:
//!
//! 1. every *decided* verdict's certificate independently re-checks
//!    (both the engine's built-in audit and this test's own call through
//!    the JSON round-trip), and
//! 2. every tampered certificate is rejected.
//!
//! Operational faults (an injected error mid-certify, a failed delta)
//! are expected and tolerated; a decided-but-unauditable certificate is
//! the one thing that must never happen.
//!
//! The failpoint registry is process-global, so the tests serialize on
//! one mutex. The quick soak runs three fixed seeds in CI; the extended
//! soak (`--ignored`) keeps cycling fresh seeds until the
//! `RELCHECK_CHAOS_SOAK_MS` budget (default 10 s) runs out.

use relcheck_bdd::failpoint;
use relcheck_core::certify::{parse_bundle, verify_certificate, AuditError, Certificate};
use relcheck_core::checker::{Checker, CheckerOptions, Verdict};
use relcheck_core::serve::{ServeActor, ServeClient, ServeConfig, ServeEngine, Submission};
use relcheck_core::store::IndexStore;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};
use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn restore_panics() {
    let _ = std::panic::take_hook();
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const CITIES: [&str; 4] = ["Toronto", "Newark", "Ithaca", "Boston"];
const AREAS: [i64; 6] = [416, 647, 905, 212, 973, 607];
const STATES: [&str; 4] = ["ON", "NY", "NJ", "MA"];

/// Every pool value appears in the base data, so the frozen BDD domains
/// cover the whole delta vocabulary — except the deliberately novel
/// values some deltas inject to exercise the overflow-degradation path.
fn chaos_db() -> Database {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for (i, &c) in CITIES.iter().enumerate() {
        for (j, &a) in AREAS.iter().enumerate() {
            rows.push(vec![
                Raw::str(c),
                Raw::Int(a),
                Raw::str(STATES[(i + j) % STATES.len()]),
            ]);
        }
    }
    db.create_relation(
        "CUST",
        &[
            ("city", "city"),
            ("areacode", "areacode"),
            ("state", "state"),
        ],
        rows,
    )
    .unwrap();
    db.create_relation(
        "CITY_STATE",
        &[("city", "city"), ("state", "state")],
        CITIES
            .iter()
            .enumerate()
            .map(|(i, &c)| vec![Raw::str(c), Raw::str(STATES[i % STATES.len()])])
            .collect(),
    )
    .unwrap();
    db
}

fn battery() -> Vec<(String, Formula)> {
    [
        (
            "toronto-prefixes",
            r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647, 905}"#,
        ),
        (
            "city-determines-state",
            "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2",
        ),
        (
            "reference-agrees",
            "forall c, a, s, s2. CUST(c, a, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "cities-are-known",
            "forall c, a, s. CUST(c, a, s) -> exists s2. CITY_STATE(c, s2)",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

#[derive(Debug, Default)]
struct SoakStats {
    certified: usize,
    decided: usize,
    undecided: usize,
    tampered: usize,
    faults: usize,
}

/// Tamper one field of a decided certificate and assert the auditor
/// rejects it — through the JSON path, exactly like a doctored bundle on
/// disk. Modes: fingerprint flip, verdict flip, witness-value rewrite.
fn tamper_rejected(
    db: &Database,
    battery: &[(String, Formula)],
    cert: &Certificate,
    mode: u64,
    ctx: &str,
) {
    let mut t = cert.clone();
    match mode % 3 {
        0 => t.constraint_fp ^= 1,
        1 => {
            t.verdict = if t.verdict == Verdict::Violated {
                Verdict::Holds
            } else {
                Verdict::Violated
            }
        }
        _ => match t.witnesses.as_mut().and_then(|w| w.tuples.first_mut()) {
            Some(tuple) => tuple[0] = Raw::Int(9_999_983),
            None => t.constraint_fp ^= 1,
        },
    }
    let json = t.to_json();
    let parsed = parse_bundle(&json).unwrap_or_else(|e| panic!("{ctx}: tampered parse: {e}"));
    assert!(
        verify_certificate(db, battery, &parsed[0]).is_err(),
        "{ctx}: tampered certificate (mode {}) survived the audit:\n{json}",
        mode % 3
    );
}

/// One randomized serve session: prime fault-free, arm every failpoint
/// site, then interleave deltas (mostly in-domain, occasionally novel →
/// overflow degradation), incremental checks, and certify passes with
/// the audit invariants asserted after each certificate.
fn soak(seed: u64, steps: usize, store_dir: Option<&std::path::Path>) -> SoakStats {
    let battery = battery();
    let opts = CheckerOptions {
        node_limit: Some(3_000),
        deadline: Some(Duration::from_millis(50)),
        telemetry: true,
        ..Default::default()
    };
    let mut checker = Checker::new(chaos_db(), opts);
    let store = store_dir.map(|dir| {
        let mut s = IndexStore::open(dir).unwrap();
        s.warm_start(&mut checker).unwrap();
        s
    });
    let (mut engine, reports) = ServeEngine::new(checker, &battery, store).unwrap();
    for (name, report) in &reports {
        assert!(report.verdict.is_decided(), "fault-free priming: {name}");
    }

    // Arm after priming: the soak is about the *session* under chaos.
    let p = 0.05 + (seed % 3) as f64 * 0.05;
    let spec = failpoint::SITES
        .iter()
        .map(|s| format!("{s}={p}"))
        .collect::<Vec<_>>()
        .join(",");
    failpoint::configure_spec(&spec, seed).unwrap();

    let mut rng = seed ^ 0xC4A0_5EED;
    let mut stats = SoakStats::default();
    for step in 0..steps {
        match splitmix(&mut rng) % 8 {
            0..=3 => {
                let r = splitmix(&mut rng);
                let novel = r.is_multiple_of(16);
                let sign = if r.is_multiple_of(3) { '-' } else { '+' };
                let line = if novel {
                    format!("{sign}CUST:Atlantis,999,XX")
                } else if r.is_multiple_of(5) {
                    format!(
                        "{sign}CITY_STATE:{},{}",
                        CITIES[(r >> 8) as usize % CITIES.len()],
                        STATES[(r >> 16) as usize % STATES.len()],
                    )
                } else {
                    format!(
                        "{sign}CUST:{},{},{}",
                        CITIES[(r >> 8) as usize % CITIES.len()],
                        AREAS[(r >> 16) as usize % AREAS.len()],
                        STATES[(r >> 24) as usize % STATES.len()],
                    )
                };
                // Both `ok delta` and `err delta` (an injected fault) are
                // legitimate; atomic maintenance means a failed delta
                // leaves the row store and the index consistent, which
                // the next certify pass will prove.
                let reply = engine.handle_line(&line);
                if reply.lines.iter().any(|l| l.starts_with("err")) {
                    stats.faults += 1;
                }
            }
            4 => {
                let _ = engine.handle_line("check");
            }
            5 => {
                let name = &battery[splitmix(&mut rng) as usize % battery.len()].0;
                let _ = engine.handle_line(&format!("check {name}"));
            }
            _ => {
                for (name, _) in &battery {
                    match engine.certify_one(name) {
                        // An injected fault killed this certify attempt —
                        // no certificate, no claim, nothing to audit.
                        Err(_) => stats.faults += 1,
                        Ok(None) => unreachable!("registered constraint"),
                        Ok(Some((cert, audit))) => {
                            stats.certified += 1;
                            let ctx = format!("seed {seed:#x} step {step} {name}");
                            let parsed = parse_bundle(&cert.to_json())
                                .unwrap_or_else(|e| panic!("{ctx}: round-trip: {e}"));
                            assert_eq!(parsed[0], cert, "{ctx}: round-trip drift");
                            if cert.verdict.is_decided() {
                                stats.decided += 1;
                                assert!(
                                    audit.is_none(),
                                    "{ctx}: decided certificate failed its audit: {audit:?}"
                                );
                                let db = engine.checker().logical_db().db();
                                verify_certificate(db, &battery, &parsed[0])
                                    .unwrap_or_else(|e| panic!("{ctx}: independent audit: {e}"));
                                let mode = splitmix(&mut rng);
                                tamper_rejected(db, &battery, &cert, mode, &ctx);
                                stats.tampered += 1;
                            } else {
                                stats.undecided += 1;
                                let db = engine.checker().logical_db().db();
                                assert!(
                                    matches!(
                                        verify_certificate(db, &battery, &parsed[0]),
                                        Err(AuditError::Unauditable { .. })
                                    ),
                                    "{ctx}: undecided certificate must be unauditable"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    failpoint::clear();
    stats
}

/// The CI soak: three fixed seeds (one per fault probability tier, one
/// with a durable store so the journal/segment/manifest sites fire too),
/// each long enough to exercise every invariant.
#[test]
fn chaos_soak_three_seeds() {
    let _g = lock();
    quiet_panics();
    for (i, seed) in [0xC0FFEE_u64, 0xBEEF01, 0x5EED33].into_iter().enumerate() {
        let store_dir = (i == 1).then(|| {
            std::env::temp_dir().join(format!("relcheck-chaos-{}-{seed:x}", std::process::id()))
        });
        let stats = soak(seed, 96, store_dir.as_deref());
        if let Some(dir) = &store_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        assert!(
            stats.decided > 0,
            "seed {seed:#x}: the soak never audited a decided verdict: {stats:?}"
        );
        assert!(
            stats.tampered > 0,
            "seed {seed:#x}: the soak never exercised tamper rejection: {stats:?}"
        );
    }
    restore_panics();
}

/// One CUST row, as a concurrent client's shadow tracks it.
type Row = (String, i64, String);

/// What one concurrent client did: the final state of the rows it owns,
/// and its admission bookkeeping (cross-checked against the actor's
/// overload counters after shutdown).
struct ClientOutcome {
    owned: BTreeSet<Row>,
    replies: u64,
    busy: u64,
}

/// One concurrent client session. Client `id` owns exactly the CUST rows
/// with areacode `AREAS[id]` — ownership is disjoint, so however the
/// actor interleaves the clients, each row's final presence is decided
/// by its owner's last delta and the endpoint is deterministic.
///
/// The shadow is updated from the engine's *reply* (`applied=true`), not
/// from intent: an injected fault that rejects a delta leaves both the
/// engine and the shadow unchanged, so the oracle survives chaos.
fn concurrent_client(client: ServeClient, id: usize, steps: usize, seed: u64) -> ClientOutcome {
    let area = AREAS[id];
    let mut owned: BTreeSet<Row> = CITIES
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let j = AREAS.iter().position(|&a| a == area).unwrap();
            (
                c.to_owned(),
                area,
                STATES[(i + j) % STATES.len()].to_owned(),
            )
        })
        .collect();
    let mut rng_state = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (mut replies, mut busy) = (0u64, 0u64);
    let names = [
        "toronto-prefixes",
        "city-determines-state",
        "reference-agrees",
        "cities-are-known",
    ];
    for _ in 0..steps {
        let r = splitmix(&mut rng_state);
        let mut delta_row: Option<(bool, Row)> = None;
        let line = match r % 8 {
            0..=4 => {
                let insert = !r.is_multiple_of(3);
                let row: Row = if id == 0 && r.is_multiple_of(17) {
                    // Novel city: exercises overflow degradation while
                    // staying inside client 0's ownership region.
                    ("Atlantis".to_owned(), area, "XX".to_owned())
                } else {
                    (
                        CITIES[(r >> 8) as usize % CITIES.len()].to_owned(),
                        area,
                        STATES[(r >> 16) as usize % STATES.len()].to_owned(),
                    )
                };
                let sign = if insert { '+' } else { '-' };
                let line = format!("{sign}CUST:{},{},{}", row.0, row.1, row.2);
                delta_row = Some((insert, row));
                line
            }
            5 => "check".to_owned(),
            6 => format!("check {}", names[(r >> 32) as usize % names.len()]),
            // Hostile garbage mid-stream: must come back as a typed err.
            _ => "definitely-not-a-command".to_owned(),
        };
        let reply = loop {
            match client.submit(&line) {
                Submission::Reply(reply) => break reply,
                Submission::Busy { retry_after_ms } => {
                    busy += 1;
                    std::thread::sleep(Duration::from_micros(200 * retry_after_ms.min(5)));
                }
                // Drained under us (a disconnecting peer's quit) — not
                // reachable in this harness, but a client must cope.
                Submission::Closed => {
                    return ClientOutcome {
                        owned,
                        replies,
                        busy,
                    }
                }
            }
        };
        replies += 1;
        assert!(!reply.lines.is_empty(), "client {id}: empty reply");
        if line.starts_with("defin") {
            assert!(
                reply.lines.iter().all(|l| l.starts_with("err ")),
                "client {id}: garbage not err-typed: {:?}",
                reply.lines
            );
        }
        if let Some((insert, row)) = delta_row {
            let applied = reply
                .lines
                .iter()
                .any(|l| l.starts_with("ok delta") && l.contains("applied=true"));
            if applied {
                if insert {
                    owned.insert(row);
                } else {
                    owned.remove(&row);
                }
            }
        }
    }
    ClientOutcome {
        owned,
        replies,
        busy,
    }
}

/// The tentpole invariant under concurrency: N clients hammer one actor
/// through a deliberately tiny queue with every failpoint armed, some
/// disconnecting early — and the session's final decided verdicts are
/// identical to a cold, serial, fault-free check of the same endpoint,
/// with every certificate still auditing. Overload accounting is
/// cross-checked against what the clients actually observed.
#[test]
fn concurrent_sessions_serialize_to_the_fault_free_verdicts() {
    let _g = lock();
    quiet_panics();
    let battery = battery();
    let dir = std::env::temp_dir().join(format!("relcheck-chaos-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut checker = Checker::new(chaos_db(), CheckerOptions::default());
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut checker).unwrap();
    let (engine, reports) = ServeEngine::new(checker, &battery, Some(store)).unwrap();
    assert!(reports.iter().all(|(_, r)| r.verdict.is_decided()));

    // Queue bound 2 against 4 clients: contention is the point. Shed
    // threshold zero pins every admitted request to the shed tier, so
    // the whole soak runs on the exact SQL rung.
    let cfg = ServeConfig {
        queue_depth: 2,
        shed_threshold: Duration::ZERO,
        ..ServeConfig::default()
    };
    let actor = ServeActor::spawn(engine, cfg);
    let p = 0.03;
    let spec = failpoint::SITES
        .iter()
        .map(|s| format!("{s}={p}"))
        .collect::<Vec<_>>()
        .join(",");
    failpoint::configure_spec(&spec, 0xC0C0_A11E).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|id| {
            let client = actor.client();
            // Client 3 disconnects early, mid-session.
            let steps = if id == 3 { 12 } else { 48 };
            std::thread::spawn(move || concurrent_client(client, id, steps, 0x5EED_C0DE))
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    failpoint::clear();

    // Fault-free endpoint check through the same admission path, then a
    // graceful quit.
    let main_client = actor.client();
    let Submission::Reply(final_check) = main_client.submit("check") else {
        panic!("endpoint check was not admitted on an idle queue");
    };
    assert!(final_check
        .lines
        .last()
        .is_some_and(|l| l.starts_with("ok check ")));
    let Submission::Reply(bye) = main_client.submit("quit") else {
        panic!("quit was not admitted on an idle queue");
    };
    assert!(bye.quit);
    drop(main_client);
    let (mut engine, overload) = actor.shutdown();

    // Admission accounting: every reply a client received was admitted
    // exactly once, every Busy was rejected exactly once.
    let client_replies: u64 = outcomes.iter().map(|o| o.replies).sum();
    let client_busy: u64 = outcomes.iter().map(|o| o.busy).sum();
    assert_eq!(overload.admitted, client_replies + 2, "admitted != replies");
    assert_eq!(overload.rejected, client_busy, "rejected != busy replies");
    assert_eq!(
        overload.shed, overload.admitted,
        "shed_threshold=0 sheds all"
    );

    // The deterministic endpoint: base rows for unowned areacodes plus
    // each client's final owned set, CITY_STATE untouched.
    let owned_areas: BTreeSet<i64> = (0..4).map(|id| AREAS[id]).collect();
    let mut final_rows: BTreeSet<Row> = BTreeSet::new();
    for (i, &c) in CITIES.iter().enumerate() {
        for (j, &a) in AREAS.iter().enumerate() {
            if !owned_areas.contains(&a) {
                final_rows.insert((c.to_owned(), a, STATES[(i + j) % STATES.len()].to_owned()));
            }
        }
    }
    for o in &outcomes {
        final_rows.extend(o.owned.iter().cloned());
    }
    let mut cold_db = Database::new();
    cold_db
        .create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            final_rows
                .iter()
                .map(|(c, a, s)| vec![Raw::str(c), Raw::Int(*a), Raw::str(s)])
                .collect(),
        )
        .unwrap();
    cold_db
        .create_relation(
            "CITY_STATE",
            &[("city", "city"), ("state", "state")],
            CITIES
                .iter()
                .enumerate()
                .map(|(i, &c)| vec![Raw::str(c), Raw::str(STATES[i % STATES.len()])])
                .collect(),
        )
        .unwrap();
    let mut cold = Checker::new(cold_db, CheckerOptions::default());
    let oracle: Vec<(String, bool)> = cold
        .check_all(&battery)
        .unwrap()
        .into_iter()
        .map(|(n, r)| {
            assert!(r.verdict.is_decided(), "cold oracle undecided on {n}");
            (n, r.holds)
        })
        .collect();
    let got: Vec<(String, bool)> = engine
        .check_all()
        .unwrap()
        .into_iter()
        .map(|(n, v)| (n, v.holds()))
        .collect();
    assert_eq!(
        got, oracle,
        "session endpoint diverged from fault-free cold check"
    );

    // Certificates still audit at the endpoint.
    for (name, _) in &battery {
        let (cert, audit) = engine.certify_one(name).unwrap().unwrap();
        assert!(cert.verdict.is_decided(), "{name}: endpoint cert undecided");
        assert!(audit.is_none(), "{name}: endpoint audit failed: {audit:?}");
        let parsed = parse_bundle(&cert.to_json()).unwrap();
        verify_certificate(engine.checker().logical_db().db(), &battery, &parsed[0])
            .unwrap_or_else(|e| panic!("{name}: independent endpoint audit: {e}"));
    }
    engine.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    restore_panics();
}

/// The extended soak: keeps spinning fresh seeds until the
/// `RELCHECK_CHAOS_SOAK_MS` wall-clock budget (default 10 s) is spent.
/// Run with `cargo test -p relcheck-core --test chaos -- --ignored`.
#[test]
#[ignore = "wall-clock soak; CI runs it explicitly via scripts/ci.sh"]
fn chaos_soak_extended() {
    let _g = lock();
    quiet_panics();
    let budget_ms: u64 = std::env::var("RELCHECK_CHAOS_SOAK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    let mut seed = 0x50AC_0001_u64;
    let mut rounds = 0usize;
    let mut decided = 0usize;
    let mut tampered = 0usize;
    while Instant::now() < deadline {
        let stats = soak(seed, 64, None);
        decided += stats.decided;
        tampered += stats.tampered;
        rounds += 1;
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    restore_panics();
    assert!(rounds > 0 && decided > 0 && tampered > 0);
    println!("soak: {rounds} round(s), {decided} decided audit(s), {tampered} tamper rejection(s)");
}
