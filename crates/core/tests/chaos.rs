//! Chaos soak: long-running randomized serve sessions under fault
//! injection at every failpoint site, with tight node budgets and
//! deadlines — and after every certify pass, the trust-but-verify
//! invariants:
//!
//! 1. every *decided* verdict's certificate independently re-checks
//!    (both the engine's built-in audit and this test's own call through
//!    the JSON round-trip), and
//! 2. every tampered certificate is rejected.
//!
//! Operational faults (an injected error mid-certify, a failed delta)
//! are expected and tolerated; a decided-but-unauditable certificate is
//! the one thing that must never happen.
//!
//! The failpoint registry is process-global, so the tests serialize on
//! one mutex. The quick soak runs three fixed seeds in CI; the extended
//! soak (`--ignored`) keeps cycling fresh seeds until the
//! `RELCHECK_CHAOS_SOAK_MS` budget (default 10 s) runs out.

use relcheck_bdd::failpoint;
use relcheck_core::certify::{parse_bundle, verify_certificate, AuditError, Certificate};
use relcheck_core::checker::{Checker, CheckerOptions, Verdict};
use relcheck_core::serve::ServeEngine;
use relcheck_core::store::IndexStore;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn restore_panics() {
    let _ = std::panic::take_hook();
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const CITIES: [&str; 4] = ["Toronto", "Newark", "Ithaca", "Boston"];
const AREAS: [i64; 6] = [416, 647, 905, 212, 973, 607];
const STATES: [&str; 4] = ["ON", "NY", "NJ", "MA"];

/// Every pool value appears in the base data, so the frozen BDD domains
/// cover the whole delta vocabulary — except the deliberately novel
/// values some deltas inject to exercise the overflow-degradation path.
fn chaos_db() -> Database {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for (i, &c) in CITIES.iter().enumerate() {
        for (j, &a) in AREAS.iter().enumerate() {
            rows.push(vec![
                Raw::str(c),
                Raw::Int(a),
                Raw::str(STATES[(i + j) % STATES.len()]),
            ]);
        }
    }
    db.create_relation(
        "CUST",
        &[
            ("city", "city"),
            ("areacode", "areacode"),
            ("state", "state"),
        ],
        rows,
    )
    .unwrap();
    db.create_relation(
        "CITY_STATE",
        &[("city", "city"), ("state", "state")],
        CITIES
            .iter()
            .enumerate()
            .map(|(i, &c)| vec![Raw::str(c), Raw::str(STATES[i % STATES.len()])])
            .collect(),
    )
    .unwrap();
    db
}

fn battery() -> Vec<(String, Formula)> {
    [
        (
            "toronto-prefixes",
            r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647, 905}"#,
        ),
        (
            "city-determines-state",
            "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2",
        ),
        (
            "reference-agrees",
            "forall c, a, s, s2. CUST(c, a, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "cities-are-known",
            "forall c, a, s. CUST(c, a, s) -> exists s2. CITY_STATE(c, s2)",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

#[derive(Debug, Default)]
struct SoakStats {
    certified: usize,
    decided: usize,
    undecided: usize,
    tampered: usize,
    faults: usize,
}

/// Tamper one field of a decided certificate and assert the auditor
/// rejects it — through the JSON path, exactly like a doctored bundle on
/// disk. Modes: fingerprint flip, verdict flip, witness-value rewrite.
fn tamper_rejected(
    db: &Database,
    battery: &[(String, Formula)],
    cert: &Certificate,
    mode: u64,
    ctx: &str,
) {
    let mut t = cert.clone();
    match mode % 3 {
        0 => t.constraint_fp ^= 1,
        1 => {
            t.verdict = if t.verdict == Verdict::Violated {
                Verdict::Holds
            } else {
                Verdict::Violated
            }
        }
        _ => match t.witnesses.as_mut().and_then(|w| w.tuples.first_mut()) {
            Some(tuple) => tuple[0] = Raw::Int(9_999_983),
            None => t.constraint_fp ^= 1,
        },
    }
    let json = t.to_json();
    let parsed = parse_bundle(&json).unwrap_or_else(|e| panic!("{ctx}: tampered parse: {e}"));
    assert!(
        verify_certificate(db, battery, &parsed[0]).is_err(),
        "{ctx}: tampered certificate (mode {}) survived the audit:\n{json}",
        mode % 3
    );
}

/// One randomized serve session: prime fault-free, arm every failpoint
/// site, then interleave deltas (mostly in-domain, occasionally novel →
/// overflow degradation), incremental checks, and certify passes with
/// the audit invariants asserted after each certificate.
fn soak(seed: u64, steps: usize, store_dir: Option<&std::path::Path>) -> SoakStats {
    let battery = battery();
    let opts = CheckerOptions {
        node_limit: Some(3_000),
        deadline: Some(Duration::from_millis(50)),
        telemetry: true,
        ..Default::default()
    };
    let mut checker = Checker::new(chaos_db(), opts);
    let store = store_dir.map(|dir| {
        let mut s = IndexStore::open(dir).unwrap();
        s.warm_start(&mut checker).unwrap();
        s
    });
    let (mut engine, reports) = ServeEngine::new(checker, &battery, store).unwrap();
    for (name, report) in &reports {
        assert!(report.verdict.is_decided(), "fault-free priming: {name}");
    }

    // Arm after priming: the soak is about the *session* under chaos.
    let p = 0.05 + (seed % 3) as f64 * 0.05;
    let spec = failpoint::SITES
        .iter()
        .map(|s| format!("{s}={p}"))
        .collect::<Vec<_>>()
        .join(",");
    failpoint::configure_spec(&spec, seed).unwrap();

    let mut rng = seed ^ 0xC4A0_5EED;
    let mut stats = SoakStats::default();
    for step in 0..steps {
        match splitmix(&mut rng) % 8 {
            0..=3 => {
                let r = splitmix(&mut rng);
                let novel = r.is_multiple_of(16);
                let sign = if r.is_multiple_of(3) { '-' } else { '+' };
                let line = if novel {
                    format!("{sign}CUST:Atlantis,999,XX")
                } else if r.is_multiple_of(5) {
                    format!(
                        "{sign}CITY_STATE:{},{}",
                        CITIES[(r >> 8) as usize % CITIES.len()],
                        STATES[(r >> 16) as usize % STATES.len()],
                    )
                } else {
                    format!(
                        "{sign}CUST:{},{},{}",
                        CITIES[(r >> 8) as usize % CITIES.len()],
                        AREAS[(r >> 16) as usize % AREAS.len()],
                        STATES[(r >> 24) as usize % STATES.len()],
                    )
                };
                // Both `ok delta` and `err delta` (an injected fault) are
                // legitimate; atomic maintenance means a failed delta
                // leaves the row store and the index consistent, which
                // the next certify pass will prove.
                let reply = engine.handle_line(&line);
                if reply.lines.iter().any(|l| l.starts_with("err")) {
                    stats.faults += 1;
                }
            }
            4 => {
                let _ = engine.handle_line("check");
            }
            5 => {
                let name = &battery[splitmix(&mut rng) as usize % battery.len()].0;
                let _ = engine.handle_line(&format!("check {name}"));
            }
            _ => {
                for (name, _) in &battery {
                    match engine.certify_one(name) {
                        // An injected fault killed this certify attempt —
                        // no certificate, no claim, nothing to audit.
                        Err(_) => stats.faults += 1,
                        Ok(None) => unreachable!("registered constraint"),
                        Ok(Some((cert, audit))) => {
                            stats.certified += 1;
                            let ctx = format!("seed {seed:#x} step {step} {name}");
                            let parsed = parse_bundle(&cert.to_json())
                                .unwrap_or_else(|e| panic!("{ctx}: round-trip: {e}"));
                            assert_eq!(parsed[0], cert, "{ctx}: round-trip drift");
                            if cert.verdict.is_decided() {
                                stats.decided += 1;
                                assert!(
                                    audit.is_none(),
                                    "{ctx}: decided certificate failed its audit: {audit:?}"
                                );
                                let db = engine.checker().logical_db().db();
                                verify_certificate(db, &battery, &parsed[0])
                                    .unwrap_or_else(|e| panic!("{ctx}: independent audit: {e}"));
                                let mode = splitmix(&mut rng);
                                tamper_rejected(db, &battery, &cert, mode, &ctx);
                                stats.tampered += 1;
                            } else {
                                stats.undecided += 1;
                                let db = engine.checker().logical_db().db();
                                assert!(
                                    matches!(
                                        verify_certificate(db, &battery, &parsed[0]),
                                        Err(AuditError::Unauditable { .. })
                                    ),
                                    "{ctx}: undecided certificate must be unauditable"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    failpoint::clear();
    stats
}

/// The CI soak: three fixed seeds (one per fault probability tier, one
/// with a durable store so the journal/segment/manifest sites fire too),
/// each long enough to exercise every invariant.
#[test]
fn chaos_soak_three_seeds() {
    let _g = lock();
    quiet_panics();
    for (i, seed) in [0xC0FFEE_u64, 0xBEEF01, 0x5EED33].into_iter().enumerate() {
        let store_dir = (i == 1).then(|| {
            std::env::temp_dir().join(format!("relcheck-chaos-{}-{seed:x}", std::process::id()))
        });
        let stats = soak(seed, 96, store_dir.as_deref());
        if let Some(dir) = &store_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        assert!(
            stats.decided > 0,
            "seed {seed:#x}: the soak never audited a decided verdict: {stats:?}"
        );
        assert!(
            stats.tampered > 0,
            "seed {seed:#x}: the soak never exercised tamper rejection: {stats:?}"
        );
    }
    restore_panics();
}

/// The extended soak: keeps spinning fresh seeds until the
/// `RELCHECK_CHAOS_SOAK_MS` wall-clock budget (default 10 s) is spent.
/// Run with `cargo test -p relcheck-core --test chaos -- --ignored`.
#[test]
#[ignore = "wall-clock soak; CI runs it explicitly via scripts/ci.sh"]
fn chaos_soak_extended() {
    let _g = lock();
    quiet_panics();
    let budget_ms: u64 = std::env::var("RELCHECK_CHAOS_SOAK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    let mut seed = 0x50AC_0001_u64;
    let mut rounds = 0usize;
    let mut decided = 0usize;
    let mut tampered = 0usize;
    while Instant::now() < deadline {
        let stats = soak(seed, 64, None);
        decided += stats.decided;
        tampered += stats.tampered;
        rounds += 1;
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    restore_panics();
    assert!(rounds > 0 && decided > 0 && tampered > 0);
    println!("soak: {rounds} round(s), {decided} decided audit(s), {tampered} tamper rejection(s)");
}
