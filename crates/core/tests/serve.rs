//! Acceptance tests for the long-lived serve engine: the differential
//! harness pinning incremental re-checking to full re-checking, and the
//! crash/restart story for store-backed sessions.
//!
//! The headline invariant: **a session's incremental verdicts are
//! byte-identical to a cold full check of the current database state** —
//! same names, same order, same outcomes — no matter which constraints
//! the dirty-set/read-set intersection let the engine skip. The harness
//! drives randomized SplitMix64-seeded delta scripts against a shadow
//! row-set and diffs every `check` against a cold serial
//! [`Checker::check_all`] *and* a cold [`ParallelChecker`] over the
//! shadow rows.
//!
//! The crash tests reuse the failpoint idioms of `tests/store.rs`: the
//! registry is process-global, so failpoint-armed tests serialize on a
//! mutex and disarm via an RAII guard.

use relcheck_bdd::failpoint;
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::registry::Verdict;
use relcheck_core::serve::ServeEngine;
use relcheck_core::store::{Delta, IndexStore};
use relcheck_core::ParallelChecker;
use relcheck_datagen::SplitMix64;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Clears the global failpoint registry on drop, so an assertion failure
/// mid-test cannot leave later tests running under injected faults.
struct FpGuard;

impl Drop for FpGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "relcheck-serve-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Three relations over two value classes. `R` and `S` share class `k`
/// (so `r-covers-s` spans both), `T` sits alone on class `j` — deltas to
/// `T` must never re-check the `k`-side constraints and vice versa.
const SCHEMAS: [(&str, &[(&str, &str)]); 3] = [
    ("R", &[("x", "k"), ("y", "k")]),
    ("S", &[("x", "k")]),
    ("T", &[("z", "j")]),
];

/// Every value a delta script may mention, per class. Interned into the
/// database *before* the first index build freezes the BDD blocks, so
/// random scripts exercise incremental index maintenance rather than the
/// domain-overflow degradation path (which has its own tests).
const K_UNIVERSE: i64 = 7;
const J_UNIVERSE: i64 = 5;

/// Shadow row-set: the plain, trusted model the engine is diffed against.
type Shadow = BTreeMap<&'static str, BTreeSet<Vec<i64>>>;

fn base_shadow() -> Shadow {
    let mut shadow = Shadow::new();
    shadow.insert("R", [vec![1, 1], vec![2, 2], vec![3, 3]].into());
    shadow.insert("S", [vec![1], vec![2]].into());
    shadow.insert("T", [vec![0], vec![1]].into());
    shadow
}

/// Build a database holding exactly the shadow rows, with the full delta
/// value universe interned so constraint constants and replayed deltas
/// always have codes.
fn db_from(shadow: &Shadow) -> Database {
    let mut db = Database::new();
    for (name, columns) in SCHEMAS {
        let rows = shadow[name]
            .iter()
            .map(|row| row.iter().map(|&v| Raw::Int(v)).collect())
            .collect();
        db.create_relation(name, columns, rows).unwrap();
    }
    for v in 0..K_UNIVERSE {
        db.encode_value("k", &Raw::Int(v));
    }
    for v in 0..J_UNIVERSE {
        db.encode_value("j", &Raw::Int(v));
    }
    db
}

fn constraints() -> Vec<(String, Formula)> {
    [
        ("r-diagonal", "forall x, y. R(x, y) -> x = y"),
        ("r-covers-s", "forall x. S(x) -> exists y. R(x, y)"),
        ("t-bounded", "forall z. T(z) -> z in {0, 1, 2, 3}"),
        ("s-nonempty", "exists x. S(x)"),
    ]
    .iter()
    .map(|(name, text)| ((*name).to_owned(), parse(text).unwrap()))
    .collect()
}

/// What a cold serial checker says about the shadow rows.
fn cold_serial(shadow: &Shadow) -> Vec<(String, bool)> {
    let mut ck = Checker::new(db_from(shadow), CheckerOptions::default());
    ck.check_all(&constraints())
        .unwrap()
        .into_iter()
        .map(|(name, report)| (name, report.holds))
        .collect()
}

/// What a cold parallel checker (2 worker lanes) says about the shadow rows.
fn cold_parallel(shadow: &Shadow) -> Vec<(String, bool)> {
    let pc = ParallelChecker::new(db_from(shadow), CheckerOptions::default(), 2);
    pc.check_all(&constraints())
        .unwrap()
        .into_iter()
        .map(|(name, report)| (name, report.holds))
        .collect()
}

/// One random delta drawn from the script distribution: a relation, a
/// row from the pre-interned universe, and an insert/delete coin.
fn random_delta(rng: &mut SplitMix64) -> (&'static str, Vec<i64>) {
    let relation = SCHEMAS[rng.gen_range(0usize..SCHEMAS.len())].0;
    let row = match relation {
        "R" => vec![
            rng.gen_range(0u64..K_UNIVERSE as u64) as i64,
            rng.gen_range(0u64..K_UNIVERSE as u64) as i64,
        ],
        "S" => vec![rng.gen_range(0u64..K_UNIVERSE as u64) as i64],
        _ => vec![rng.gen_range(0u64..J_UNIVERSE as u64) as i64],
    };
    (relation, row)
}

/// Apply one delta to both the engine and the shadow, asserting the two
/// agree on whether the relation actually changed.
fn apply_both(
    engine: &mut ServeEngine,
    shadow: &mut Shadow,
    relation: &'static str,
    row: Vec<i64>,
    insert: bool,
    context: &str,
) {
    let raw: Vec<Raw> = row.iter().map(|&v| Raw::Int(v)).collect();
    let delta = if insert {
        Delta::Insert(raw)
    } else {
        Delta::Delete(raw)
    };
    let changed = engine.apply(relation, &delta).unwrap();
    let rows = shadow.get_mut(relation).unwrap();
    let shadow_changed = if insert {
        rows.insert(row.clone())
    } else {
        rows.remove(&row)
    };
    assert_eq!(
        changed, shadow_changed,
        "{context}: engine/shadow disagree on change for {relation} {row:?} insert={insert}"
    );
}

/// The session's incremental verdicts, flattened to the differential
/// signature (name, holds) in registration order.
fn incremental(engine: &mut ServeEngine) -> Vec<(String, bool)> {
    engine
        .check_all()
        .unwrap()
        .into_iter()
        .map(|(name, v)| (name, v.holds()))
        .collect()
}

#[test]
fn differential_random_scripts_match_cold_full_recheck() {
    let _g = lock();
    let mut total_skipped = 0u64;
    for seed in [1u64, 42, 20070415] {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut shadow = base_shadow();
        let (mut engine, reports) = ServeEngine::new(
            Checker::new(db_from(&shadow), CheckerOptions::default()),
            &constraints(),
            None,
        )
        .unwrap();
        assert!(
            reports.iter().all(|(_, r)| r.holds),
            "seed {seed}: base state should satisfy every constraint"
        );
        for step in 0..60 {
            let context = format!("seed {seed} step {step}");
            let (relation, row) = random_delta(&mut rng);
            let insert = rng.gen_bool(0.6);
            apply_both(&mut engine, &mut shadow, relation, row, insert, &context);
            if rng.gen_bool(0.3) {
                let got = incremental(&mut engine);
                assert_eq!(got, cold_serial(&shadow), "{context}: serial differential");
                assert_eq!(
                    got,
                    cold_parallel(&shadow),
                    "{context}: parallel differential"
                );
            }
        }
        // Always finish on a check so every script's endpoint is diffed.
        let got = incremental(&mut engine);
        assert_eq!(
            got,
            cold_serial(&shadow),
            "seed {seed}: final serial differential"
        );
        assert_eq!(
            got,
            cold_parallel(&shadow),
            "seed {seed}: final parallel differential"
        );
        let stats = engine.stats();
        assert_eq!(stats.deltas, 60);
        total_skipped += stats.constraints_skipped;
    }
    // The differential must have exercised the skip path, not just
    // re-checked everything every time — otherwise it proves nothing
    // about read-set-driven caching.
    assert!(
        total_skipped > 0,
        "random scripts never skipped a constraint; the differential is vacuous"
    );
}

#[test]
fn store_backed_script_survives_clean_restart() {
    let _g = lock();
    let dir = scratch("restart");
    let mut shadow = base_shadow();

    // Session 1: store-backed script with a clean shutdown (write_back).
    {
        let mut ck = Checker::new(db_from(&shadow), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        let mut rng = SplitMix64::seed_from_u64(7);
        for step in 0..12 {
            let (relation, row) = random_delta(&mut rng);
            let insert = rng.gen_bool(0.6);
            apply_both(
                &mut engine,
                &mut shadow,
                relation,
                row,
                insert,
                &format!("restart step {step}"),
            );
        }
        assert_eq!(incremental(&mut engine), cold_serial(&shadow));
        engine.finish().unwrap();
    }

    // Session 2: warm start over the base database must reconstruct the
    // final session-1 state and answer exactly like a cold checker on it.
    let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let (mut engine, reports) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
    let primed: Vec<(String, bool)> = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    assert_eq!(
        primed,
        cold_serial(&shadow),
        "warm-started baseline diverged"
    );
    // And the first incremental check answers everything from cache.
    let verdicts = engine.check_all().unwrap();
    assert!(verdicts
        .iter()
        .all(|(_, v)| matches!(v, Verdict::Cached { .. })));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_append_loses_only_the_unacknowledged_delta() {
    let _g = lock();
    let dir = scratch("torn");

    // Session 1: build the cache over the base rows.
    {
        let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        engine.finish().unwrap();
    }

    // Session 2: one acknowledged delta, then a torn journal append —
    // the failpoint writes half the record and errors, exactly a crash
    // mid-write. The session dies without write_back.
    {
        let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        // Acknowledged: R(1,2) breaks the diagonal.
        assert!(engine
            .apply("R", &Delta::Insert(vec![Raw::Int(1), Raw::Int(2)]))
            .unwrap());
        let verdicts: BTreeMap<String, Verdict> = engine.check_all().unwrap().into_iter().collect();
        assert!(matches!(
            verdicts["r-diagonal"],
            Verdict::Checked { holds: false }
        ));

        let _fp = FpGuard;
        failpoint::configure_spec("journal-append=1", 20070415).unwrap();
        // Unacknowledged: deleting R(1,2) would restore the diagonal, but
        // the append tears. The error reaches the caller and the relation
        // is NOT marked dirty — the engine never claimed the delta.
        let err = engine
            .apply("R", &Delta::Delete(vec![Raw::Int(1), Raw::Int(2)]))
            .unwrap_err();
        assert!(
            err.to_string().contains("journal"),
            "unexpected error for torn append: {err}"
        );
        assert!(engine.dirty().is_empty());
        // Crash: drop without finish().
    }

    // Session 3: warm start must replay the acknowledged delta, discard
    // the torn tail, and answer exactly like the fault-free prefix —
    // r-diagonal stays violated because the delete was never acknowledged.
    let mut oracle = base_shadow();
    oracle.get_mut("R").unwrap().insert(vec![1, 2]);
    let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(
        store.stats.journal_replayed, 1,
        "exactly the acknowledged delta replays"
    );
    let (engine, reports) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
    let primed: Vec<(String, bool)> = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    assert_eq!(
        primed,
        cold_serial(&oracle),
        "post-crash verdicts diverged from fault-free run"
    );
    assert!(!primed.iter().find(|(n, _)| n == "r-diagonal").unwrap().1);
    drop(engine);
    let _ = fs::remove_dir_all(&dir);
}
