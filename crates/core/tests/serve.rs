//! Acceptance tests for the long-lived serve engine: the differential
//! harness pinning incremental re-checking to full re-checking, and the
//! crash/restart story for store-backed sessions.
//!
//! The headline invariant: **a session's incremental verdicts are
//! byte-identical to a cold full check of the current database state** —
//! same names, same order, same outcomes — no matter which constraints
//! the dirty-set/read-set intersection let the engine skip. The harness
//! drives randomized SplitMix64-seeded delta scripts against a shadow
//! row-set and diffs every `check` against a cold serial
//! [`Checker::check_all`] *and* a cold [`ParallelChecker`] over the
//! shadow rows.
//!
//! The crash tests reuse the failpoint idioms of `tests/store.rs`: the
//! registry is process-global, so failpoint-armed tests serialize on a
//! mutex and disarm via an RAII guard.

use relcheck_bdd::failpoint;
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::registry::Verdict;
use relcheck_core::serve::{ServeActor, ServeConfig, ServeEngine, Submission, JOURNAL_RETRY_LIMIT};
use relcheck_core::store::{Delta, IndexStore};
use relcheck_core::ParallelChecker;
use relcheck_datagen::SplitMix64;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Clears the global failpoint registry on drop, so an assertion failure
/// mid-test cannot leave later tests running under injected faults.
struct FpGuard;

impl Drop for FpGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "relcheck-serve-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Three relations over two value classes. `R` and `S` share class `k`
/// (so `r-covers-s` spans both), `T` sits alone on class `j` — deltas to
/// `T` must never re-check the `k`-side constraints and vice versa.
const SCHEMAS: [(&str, &[(&str, &str)]); 3] = [
    ("R", &[("x", "k"), ("y", "k")]),
    ("S", &[("x", "k")]),
    ("T", &[("z", "j")]),
];

/// Every value a delta script may mention, per class. Interned into the
/// database *before* the first index build freezes the BDD blocks, so
/// random scripts exercise incremental index maintenance rather than the
/// domain-overflow degradation path (which has its own tests).
const K_UNIVERSE: i64 = 7;
const J_UNIVERSE: i64 = 5;

/// Shadow row-set: the plain, trusted model the engine is diffed against.
type Shadow = BTreeMap<&'static str, BTreeSet<Vec<i64>>>;

fn base_shadow() -> Shadow {
    let mut shadow = Shadow::new();
    shadow.insert("R", [vec![1, 1], vec![2, 2], vec![3, 3]].into());
    shadow.insert("S", [vec![1], vec![2]].into());
    shadow.insert("T", [vec![0], vec![1]].into());
    shadow
}

/// Build a database holding exactly the shadow rows, with the full delta
/// value universe interned so constraint constants and replayed deltas
/// always have codes.
fn db_from(shadow: &Shadow) -> Database {
    let mut db = Database::new();
    for (name, columns) in SCHEMAS {
        let rows = shadow[name]
            .iter()
            .map(|row| row.iter().map(|&v| Raw::Int(v)).collect())
            .collect();
        db.create_relation(name, columns, rows).unwrap();
    }
    for v in 0..K_UNIVERSE {
        db.encode_value("k", &Raw::Int(v));
    }
    for v in 0..J_UNIVERSE {
        db.encode_value("j", &Raw::Int(v));
    }
    db
}

fn constraints() -> Vec<(String, Formula)> {
    [
        ("r-diagonal", "forall x, y. R(x, y) -> x = y"),
        ("r-covers-s", "forall x. S(x) -> exists y. R(x, y)"),
        ("t-bounded", "forall z. T(z) -> z in {0, 1, 2, 3}"),
        ("s-nonempty", "exists x. S(x)"),
    ]
    .iter()
    .map(|(name, text)| ((*name).to_owned(), parse(text).unwrap()))
    .collect()
}

/// What a cold serial checker says about the shadow rows.
fn cold_serial(shadow: &Shadow) -> Vec<(String, bool)> {
    let mut ck = Checker::new(db_from(shadow), CheckerOptions::default());
    ck.check_all(&constraints())
        .unwrap()
        .into_iter()
        .map(|(name, report)| (name, report.holds))
        .collect()
}

/// What a cold parallel checker (2 worker lanes) says about the shadow rows.
fn cold_parallel(shadow: &Shadow) -> Vec<(String, bool)> {
    let pc = ParallelChecker::new(db_from(shadow), CheckerOptions::default(), 2);
    pc.check_all(&constraints())
        .unwrap()
        .into_iter()
        .map(|(name, report)| (name, report.holds))
        .collect()
}

/// One random delta drawn from the script distribution: a relation, a
/// row from the pre-interned universe, and an insert/delete coin.
fn random_delta(rng: &mut SplitMix64) -> (&'static str, Vec<i64>) {
    let relation = SCHEMAS[rng.gen_range(0usize..SCHEMAS.len())].0;
    let row = match relation {
        "R" => vec![
            rng.gen_range(0u64..K_UNIVERSE as u64) as i64,
            rng.gen_range(0u64..K_UNIVERSE as u64) as i64,
        ],
        "S" => vec![rng.gen_range(0u64..K_UNIVERSE as u64) as i64],
        _ => vec![rng.gen_range(0u64..J_UNIVERSE as u64) as i64],
    };
    (relation, row)
}

/// Apply one delta to both the engine and the shadow, asserting the two
/// agree on whether the relation actually changed.
fn apply_both(
    engine: &mut ServeEngine,
    shadow: &mut Shadow,
    relation: &'static str,
    row: Vec<i64>,
    insert: bool,
    context: &str,
) {
    let raw: Vec<Raw> = row.iter().map(|&v| Raw::Int(v)).collect();
    let delta = if insert {
        Delta::Insert(raw)
    } else {
        Delta::Delete(raw)
    };
    let outcome = engine.apply(relation, &delta).unwrap();
    assert!(
        outcome.durable,
        "{context}: fault-free applies are always durable"
    );
    let changed = outcome.changed;
    let rows = shadow.get_mut(relation).unwrap();
    let shadow_changed = if insert {
        rows.insert(row.clone())
    } else {
        rows.remove(&row)
    };
    assert_eq!(
        changed, shadow_changed,
        "{context}: engine/shadow disagree on change for {relation} {row:?} insert={insert}"
    );
}

/// The session's incremental verdicts, flattened to the differential
/// signature (name, holds) in registration order.
fn incremental(engine: &mut ServeEngine) -> Vec<(String, bool)> {
    engine
        .check_all()
        .unwrap()
        .into_iter()
        .map(|(name, v)| (name, v.holds()))
        .collect()
}

#[test]
fn differential_random_scripts_match_cold_full_recheck() {
    let _g = lock();
    let mut total_skipped = 0u64;
    for seed in [1u64, 42, 20070415] {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut shadow = base_shadow();
        let (mut engine, reports) = ServeEngine::new(
            Checker::new(db_from(&shadow), CheckerOptions::default()),
            &constraints(),
            None,
        )
        .unwrap();
        assert!(
            reports.iter().all(|(_, r)| r.holds),
            "seed {seed}: base state should satisfy every constraint"
        );
        for step in 0..60 {
            let context = format!("seed {seed} step {step}");
            let (relation, row) = random_delta(&mut rng);
            let insert = rng.gen_bool(0.6);
            apply_both(&mut engine, &mut shadow, relation, row, insert, &context);
            if rng.gen_bool(0.3) {
                let got = incremental(&mut engine);
                assert_eq!(got, cold_serial(&shadow), "{context}: serial differential");
                assert_eq!(
                    got,
                    cold_parallel(&shadow),
                    "{context}: parallel differential"
                );
            }
        }
        // Always finish on a check so every script's endpoint is diffed.
        let got = incremental(&mut engine);
        assert_eq!(
            got,
            cold_serial(&shadow),
            "seed {seed}: final serial differential"
        );
        assert_eq!(
            got,
            cold_parallel(&shadow),
            "seed {seed}: final parallel differential"
        );
        let stats = engine.stats();
        assert_eq!(stats.deltas, 60);
        total_skipped += stats.constraints_skipped;
    }
    // The differential must have exercised the skip path, not just
    // re-checked everything every time — otherwise it proves nothing
    // about read-set-driven caching.
    assert!(
        total_skipped > 0,
        "random scripts never skipped a constraint; the differential is vacuous"
    );
}

#[test]
fn store_backed_script_survives_clean_restart() {
    let _g = lock();
    let dir = scratch("restart");
    let mut shadow = base_shadow();

    // Session 1: store-backed script with a clean shutdown (write_back).
    {
        let mut ck = Checker::new(db_from(&shadow), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        let mut rng = SplitMix64::seed_from_u64(7);
        for step in 0..12 {
            let (relation, row) = random_delta(&mut rng);
            let insert = rng.gen_bool(0.6);
            apply_both(
                &mut engine,
                &mut shadow,
                relation,
                row,
                insert,
                &format!("restart step {step}"),
            );
        }
        assert_eq!(incremental(&mut engine), cold_serial(&shadow));
        engine.finish().unwrap();
    }

    // Session 2: warm start over the base database must reconstruct the
    // final session-1 state and answer exactly like a cold checker on it.
    let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let (mut engine, reports) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
    let primed: Vec<(String, bool)> = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    assert_eq!(
        primed,
        cold_serial(&shadow),
        "warm-started baseline diverged"
    );
    // And the first incremental check answers everything from cache.
    let verdicts = engine.check_all().unwrap();
    assert!(verdicts
        .iter()
        .all(|(_, v)| matches!(v, Verdict::Cached { .. })));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_append_loses_only_the_unacknowledged_delta() {
    let _g = lock();
    let dir = scratch("torn");

    // Session 1: build the cache over the base rows.
    {
        let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        engine.finish().unwrap();
    }

    // Session 2: one acknowledged delta, then a journal append that tears
    // on every attempt (p=1 fails regardless of the retry-varied key).
    // The retry budget runs dry, so the engine applies the delta
    // rows-only, reports it non-durable, and degrades the relation to the
    // SQL rung — the session keeps answering exactly, but the delta is
    // NOT journaled. The session then dies without write_back.
    {
        let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        // Acknowledged: R(1,2) breaks the diagonal.
        assert!(
            engine
                .apply("R", &Delta::Insert(vec![Raw::Int(1), Raw::Int(2)]))
                .unwrap()
                .durable
        );
        let verdicts: BTreeMap<String, Verdict> = engine.check_all().unwrap().into_iter().collect();
        assert!(matches!(
            verdicts["r-diagonal"],
            Verdict::Checked { holds: false }
        ));

        let _fp = FpGuard;
        failpoint::configure_spec("journal-append=1", 20070415).unwrap();
        // Unjournaled: deleting R(1,2) restores the diagonal in the live
        // session, but every append attempt tears, so the outcome is
        // exact-but-not-durable and the live verdict still flips.
        let outcome = engine
            .apply("R", &Delta::Delete(vec![Raw::Int(1), Raw::Int(2)]))
            .unwrap();
        assert!(outcome.changed);
        assert!(
            !outcome.durable,
            "exhausted retries must surrender durability"
        );
        assert_eq!(outcome.retries, JOURNAL_RETRY_LIMIT);
        assert_eq!(engine.journal_retries(), JOURNAL_RETRY_LIMIT);
        assert!(engine.dirty().contains("R"));
        let verdicts: BTreeMap<String, Verdict> = engine.check_all().unwrap().into_iter().collect();
        assert!(
            verdicts["r-diagonal"].holds(),
            "rows-only delta must still flip the live verdict"
        );
        // Crash: drop without finish().
    }

    // Session 3: warm start must replay the acknowledged delta, find no
    // torn tail (retry attempts truncate their own debris), and answer
    // exactly like the fault-free prefix — r-diagonal is violated again
    // because the delete was never journaled.
    let mut oracle = base_shadow();
    oracle.get_mut("R").unwrap().insert(vec![1, 2]);
    let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    assert_eq!(
        store.stats.journal_replayed, 1,
        "exactly the acknowledged delta replays"
    );
    let (engine, reports) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
    let primed: Vec<(String, bool)> = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    assert_eq!(
        primed,
        cold_serial(&oracle),
        "post-crash verdicts diverged from fault-free run"
    );
    assert!(!primed.iter().find(|(n, _)| n == "r-diagonal").unwrap().1);
    drop(engine);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flaky_journal_appends_retry_to_durability_and_replay_cleanly() {
    let _g = lock();
    let dir = scratch("flaky");
    let mut shadow = base_shadow();

    // Session 1: a delta script under a journal that tears transiently.
    // Attempt 0 uses the legacy per-relation key, retries re-key per
    // (sequence, attempt) — so a relation whose first attempt fires
    // deterministically still converges within the retry budget.
    {
        let mut ck = Checker::new(db_from(&shadow), CheckerOptions::default());
        let mut store = IndexStore::open(&dir).unwrap();
        store.warm_start(&mut ck).unwrap();
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
        let fp = FpGuard;
        failpoint::configure_spec("journal-append=0.4", 11).unwrap();
        let mut rng = SplitMix64::seed_from_u64(3);
        for step in 0..16 {
            let (relation, row) = random_delta(&mut rng);
            let insert = rng.gen_bool(0.6);
            // apply_both asserts every outcome is durable: under this
            // seed the budget always suffices, so flakiness is absorbed
            // invisibly to the client.
            apply_both(
                &mut engine,
                &mut shadow,
                relation,
                row,
                insert,
                &format!("flaky step {step}"),
            );
        }
        assert!(
            engine.journal_retries() > 0,
            "seed 11 must exercise the retry path, else the test is vacuous"
        );
        assert_eq!(incremental(&mut engine), cold_serial(&shadow));
        drop(fp);
        engine.finish().unwrap();
    }

    // Session 2: the journal the retries produced must replay to exactly
    // the script's endpoint — no duplicated or half-written records from
    // the failed attempts (each retry truncates its own torn tail).
    let mut ck = Checker::new(db_from(&base_shadow()), CheckerOptions::default());
    let mut store = IndexStore::open(&dir).unwrap();
    store.warm_start(&mut ck).unwrap();
    let (_engine, reports) = ServeEngine::new(ck, &constraints(), Some(store)).unwrap();
    let primed: Vec<(String, bool)> = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    assert_eq!(
        primed,
        cold_serial(&shadow),
        "restart after flaky session diverged"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Drive one scripted line through a [`ServeClient`], asserting it was
/// admitted (single sequential submitters can never overfill the queue).
fn submit_ok(client: &relcheck_core::ServeClient, line: &str) -> Vec<String> {
    match client.submit(line) {
        Submission::Reply(reply) => reply.lines,
        other => panic!("sequential submit was not admitted: {other:?}"),
    }
}

#[test]
fn actor_replies_are_byte_identical_to_the_direct_engine() {
    let _g = lock();
    // Timing-free script: deltas (valid, no-op, malformed), full and
    // single checks, unknown commands. `stats` is excluded — its reply
    // embeds wall-clock micros and is legitimately run-dependent.
    let script = [
        "+R:1,2",
        "check",
        "# annotated pause",
        "",
        "-R:1,2",
        "-R:6,6", // absent row: applied=false
        "check r-diagonal",
        "+BOGUS:1",
        "not-a-command",
        "+R:malformed", // arity mismatch: typed err reply
        "check",
        "quit",
    ];
    let direct: Vec<String> = {
        let (mut engine, _) = ServeEngine::new(
            Checker::new(db_from(&base_shadow()), CheckerOptions::default()),
            &constraints(),
            None,
        )
        .unwrap();
        script
            .iter()
            .flat_map(|line| engine.handle_line(line).lines)
            .collect()
    };
    // Same script through the actor, once per admission tier: Normal, and
    // shed-everything (threshold zero). Shedding changes the ladder entry
    // rung, never the reply bytes.
    for shed_everything in [false, true] {
        let (engine, _) = ServeEngine::new(
            Checker::new(db_from(&base_shadow()), CheckerOptions::default()),
            &constraints(),
            None,
        )
        .unwrap();
        let cfg = ServeConfig {
            shed_threshold: if shed_everything {
                std::time::Duration::ZERO
            } else {
                std::time::Duration::from_secs(3600)
            },
            ..ServeConfig::default()
        };
        let actor = ServeActor::spawn(engine, cfg);
        let client = actor.client();
        let via_actor: Vec<String> = script
            .iter()
            .flat_map(|line| submit_ok(&client, line))
            .collect();
        assert_eq!(
            via_actor, direct,
            "actor replies diverged (shed_everything={shed_everything})"
        );
        // After quit the session drains: later submits are turned away.
        assert!(client.is_draining());
        assert!(matches!(client.submit("check"), Submission::Closed));
        drop(client);
        let (_engine, overload) = actor.shutdown();
        assert_eq!(overload.admitted, script.len() as u64);
        assert_eq!(overload.rejected, 0);
        assert_eq!(
            overload.shed,
            if shed_everything {
                script.len() as u64
            } else {
                0
            }
        );
        assert_eq!(overload.retries, 0);
        assert_eq!(overload.drained, 0);
    }
}

#[test]
fn shed_tier_enters_the_ladder_at_sql_and_preserves_the_verdict() {
    let _g = lock();
    let opts = CheckerOptions {
        telemetry: true,
        ..CheckerOptions::default()
    };
    let mut shadow = base_shadow();
    shadow.get_mut("R").unwrap().insert(vec![1, 2]); // breaks r-diagonal
    let diagonal = parse("forall x, y. R(x, y) -> x = y").unwrap();
    let mut normal = Checker::new(db_from(&shadow), opts);
    let baseline = normal.check(&diagonal).unwrap();
    let base_trace = baseline.metrics.as_ref().unwrap();
    assert_eq!(base_trace.ladder.first(), Some(&"bdd"));
    assert!(!baseline.holds);

    let mut shedding = Checker::new(db_from(&shadow), opts);
    shedding.set_shed_load(true);
    let shed = shedding.check(&diagonal).unwrap();
    let shed_trace = shed.metrics.as_ref().unwrap();
    // The BDD rung is skipped entirely: the ladder *starts* at sql, the
    // trace records why, and the verdict is exactly the BDD rung's.
    assert_eq!(shed_trace.ladder.first(), Some(&"sql"));
    assert!(matches!(
        shed_trace.fallback,
        Some(relcheck_core::FallbackReason::Overload)
    ));
    assert_eq!(shed.holds, baseline.holds);
    assert_eq!(shed.verdict, baseline.verdict);
}
