//! Acceptance tests for the CheckPlan IR: golden plan snapshots, the
//! plan-vs-legacy differential gate, plan-cache hit/miss accounting, and
//! staleness regressions (a cached plan must never execute against a
//! mutated database or a changed checker configuration).

use relcheck_core::checker::{Checker, CheckerOptions, Method, Verdict};
use relcheck_core::registry::ConstraintRegistry;
use relcheck_core::telemetry::{validate_metrics_json, RunMetrics};
use relcheck_core::PlanOptions;
use relcheck_logic::eval::eval_sentence;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};

fn customer_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "CUST",
        &[
            ("city", "city"),
            ("areacode", "areacode"),
            ("state", "state"),
        ],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
            vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
            vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
            vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
            vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
        ],
    )
    .unwrap();
    db.create_relation(
        "ALLOWED",
        &[("city", "city"), ("areacode", "areacode")],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416)],
            vec![Raw::str("Toronto"), Raw::Int(647)],
            vec![Raw::str("Oshawa"), Raw::Int(905)],
            vec![Raw::str("Newark"), Raw::Int(973)],
        ],
    )
    .unwrap();
    db
}

const FD: &str = "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2";
const INCLUSION: &str = "forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)";
const EQUI_JOIN: &str = "forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)";

fn corpus() -> Vec<(&'static str, Formula)> {
    [
        ("fd-city-state", FD),
        ("inclusion", INCLUSION),
        ("allowed-served", EQUI_JOIN),
        ("nonempty", "exists c, a, s. CUST(c, a, s)"),
        (
            "toronto-codes",
            r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647}"#,
        ),
        (
            "no-ny-allowed",
            r#"!(exists c, a, s. CUST(c, a, s) & ALLOWED(c, a) & s = "NY")"#,
        ),
        (
            "state-vocabulary",
            r#"forall c, a, s. CUST(c, a, s) -> s = "ON" | s = "NJ" | s = "NY""#,
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n, parse(s).unwrap()))
    .collect()
}

/// A plan's rendered text minus the fingerprint line (fingerprints are
/// deterministic but recomputed from upstream details — ordering hashes,
/// option bits — that would make the golden needlessly brittle; the
/// determinism test below covers them byte-for-byte).
fn render_sans_fingerprint(ck: &mut Checker, src: &str) -> String {
    let plan = ck.plan(&parse(src).unwrap()).unwrap();
    plan.render()
        .lines()
        .filter(|l| !l.trim_start().starts_with("fingerprint:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Golden snapshot: the FD's five-variable ∀-block strips entirely (R1×5
/// after R3×5), the refutation body is the classic premise ∧ ¬conclusion,
/// and R4 finds nothing to distribute (a single conjunction, no residual
/// block).
#[test]
fn golden_plan_fd() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    let expected = "\
plan for: forall c, a1, s1, a2, s2. ((CUST(c, a1, s1) & CUST(c, a2, s2)) -> s1 = s2)
  options: prenex=on strip-leading=on forall-pushdown=on gate=on join-rename=on fused-quant=on
  passes:
    1. prenex-pullup [R3] fired=5 gated=0
       before: forall c, a1, s1, a2, s2. ((CUST(c, a1, s1) & CUST(c, a2, s2)) -> s1 = s2)
       after:  forall c. forall a1. forall s1. forall a2. forall s2. ((!(CUST(c, a1, s1)) | !(CUST(c, a2, s2))) | s1 = s2)
    2. strip-leading-block [R1] fired=5 gated=0
       before: forall c. forall a1. forall s1. forall a2. forall s2. ((!(CUST(c, a1, s1)) | !(CUST(c, a2, s2))) | s1 = s2)
       after:  ((!(CUST(c, a1, s1)) | !(CUST(c, a2, s2))) | s1 = s2)
    3. refutation-nnf [--] fired=1 gated=0
       before: ((!(CUST(c, a1, s1)) | !(CUST(c, a2, s2))) | s1 = s2)
       after:  (CUST(c, a1, s1) & CUST(c, a2, s2) & !(s1 = s2))
    4. forall-pushdown [R4] fired=0 gated=0
       before: (CUST(c, a1, s1) & CUST(c, a2, s2) & !(s1 = s2))
       after:  (CUST(c, a1, s1) & CUST(c, a2, s2) & !(s1 = s2))
  bdd step: test=violations-empty stripped=[c, a1, s1, a2, s2] join-rename=on fused-quant=on
    body: (CUST(c, a1, s1) & CUST(c, a2, s2) & !(s1 = s2))
  sql step: shape=violations columns=[city, areacode, state]
  ladder: bdd -> sql -> brute_force";
    assert_eq!(render_sans_fingerprint(&mut ck, FD), expected);
}

/// Golden snapshot: the inclusion dependency's refutation body is the
/// textbook anti-join `CUST ∧ ¬ALLOWED`.
#[test]
fn golden_plan_inclusion_dependency() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    let expected = "\
plan for: forall c, a, s. (CUST(c, a, s) -> ALLOWED(c, a))
  options: prenex=on strip-leading=on forall-pushdown=on gate=on join-rename=on fused-quant=on
  passes:
    1. prenex-pullup [R3] fired=3 gated=0
       before: forall c, a, s. (CUST(c, a, s) -> ALLOWED(c, a))
       after:  forall c. forall a. forall s. (!(CUST(c, a, s)) | ALLOWED(c, a))
    2. strip-leading-block [R1] fired=3 gated=0
       before: forall c. forall a. forall s. (!(CUST(c, a, s)) | ALLOWED(c, a))
       after:  (!(CUST(c, a, s)) | ALLOWED(c, a))
    3. refutation-nnf [--] fired=1 gated=0
       before: (!(CUST(c, a, s)) | ALLOWED(c, a))
       after:  (CUST(c, a, s) & !(ALLOWED(c, a)))
    4. forall-pushdown [R4] fired=0 gated=0
       before: (CUST(c, a, s) & !(ALLOWED(c, a)))
       after:  (CUST(c, a, s) & !(ALLOWED(c, a)))
  bdd step: test=violations-empty stripped=[c, a, s] join-rename=on fused-quant=on
    body: (CUST(c, a, s) & !(ALLOWED(c, a)))
  sql step: shape=violations columns=[c, a, s]
  ladder: bdd -> sql -> brute_force";
    assert_eq!(render_sans_fingerprint(&mut ck, INCLUSION), expected);
}

/// Golden snapshot: the ∀∃ equi-join keeps a residual ∀-block after R1
/// (only the outer two strip), the refutation flips it from ∃ to ∀, and
/// the cost gate lets R4 distribute it into the conjunction (the
/// estimated sum 4 + 5 beats the product 4·5 on this fixture).
#[test]
fn golden_plan_equi_join() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    let expected = "\
plan for: forall c, a. (ALLOWED(c, a) -> exists s. CUST(c, a, s))
  options: prenex=on strip-leading=on forall-pushdown=on gate=on join-rename=on fused-quant=on
  passes:
    1. prenex-pullup [R3] fired=3 gated=0
       before: forall c, a. (ALLOWED(c, a) -> exists s. CUST(c, a, s))
       after:  forall c. forall a. exists s. (!(ALLOWED(c, a)) | CUST(c, a, s))
    2. strip-leading-block [R1] fired=2 gated=0
       before: forall c. forall a. exists s. (!(ALLOWED(c, a)) | CUST(c, a, s))
       after:  exists s. (!(ALLOWED(c, a)) | CUST(c, a, s))
    3. refutation-nnf [--] fired=1 gated=0
       before: exists s. (!(ALLOWED(c, a)) | CUST(c, a, s))
       after:  forall s. (ALLOWED(c, a) & !(CUST(c, a, s)))
    4. forall-pushdown [R4] fired=1 gated=0
       before: forall s. (ALLOWED(c, a) & !(CUST(c, a, s)))
       after:  (ALLOWED(c, a) & forall s. !(CUST(c, a, s)))
  bdd step: test=violations-empty stripped=[c, a] join-rename=on fused-quant=on
    body: (ALLOWED(c, a) & forall s. !(CUST(c, a, s)))
  sql step: shape=violations columns=[c, a]
  ladder: bdd -> sql -> brute_force";
    assert_eq!(render_sans_fingerprint(&mut ck, EQUI_JOIN), expected);
}

/// Two independently-built checkers must produce byte-identical plans,
/// fingerprints included — the property `relcheck plan` and the CI
/// determinism smoke rely on.
#[test]
fn plans_are_deterministic_across_checkers() {
    for (name, f) in corpus() {
        let mut a = Checker::new(customer_db(), CheckerOptions::default());
        let mut b = Checker::new(customer_db(), CheckerOptions::default());
        assert_eq!(
            a.plan(&f).unwrap().render(),
            b.plan(&f).unwrap().render(),
            "{name}: plan text must be deterministic"
        );
    }
}

/// The differential gate from the ISSUE: for every corpus constraint, the
/// plan-based path returns the same four-valued verdict as the legacy
/// two-switch configurations and as brute force — serial and parallel.
#[test]
fn plan_execution_matches_legacy_and_brute_force() {
    let brute = Checker::new(customer_db(), CheckerOptions::default());
    for (name, f) in corpus() {
        let expected = eval_sentence(brute.logical_db().db(), &f).unwrap();
        // Plan path under the default (gated) options plus the two legacy
        // corner configurations.
        for plan in [
            PlanOptions::default(),
            PlanOptions::from_flags(true, true),
            PlanOptions::from_flags(false, false),
        ] {
            let mut ck = Checker::new(
                customer_db(),
                CheckerOptions {
                    plan,
                    ..Default::default()
                },
            );
            let report = ck.check(&f).unwrap();
            assert_eq!(report.method, Method::Bdd, "{name}: decided on rung 1");
            assert_eq!(report.holds, expected, "{name} under {plan:?}");
            assert_eq!(
                report.verdict,
                if expected {
                    Verdict::Holds
                } else {
                    Verdict::Violated
                },
                "{name} under {plan:?}"
            );
        }
    }
    // Parallel front-end over the whole corpus at once.
    let battery: Vec<(String, Formula)> = corpus()
        .into_iter()
        .map(|(n, f)| (n.to_owned(), f))
        .collect();
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    for (name, report) in ck.check_all_parallel(&battery, 3).unwrap() {
        let f = &battery.iter().find(|(n, _)| *n == name).unwrap().1;
        let expected = eval_sentence(&customer_db(), f).unwrap();
        assert_eq!(report.holds, expected, "{name} (parallel)");
    }
}

/// A plan produced by `Checker::plan` and re-submitted through
/// `check_with_plan` must decide identically to a planless check.
#[test]
fn precomputed_plans_execute_identically() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    for (name, f) in corpus() {
        let plan = ck.plan(&f).unwrap();
        let via_plan = ck.check_with_plan(&f, &plan).unwrap();
        let direct = ck.check(&f).unwrap();
        assert_eq!(
            (via_plan.holds, via_plan.verdict, via_plan.method),
            (direct.holds, direct.verdict, direct.method),
            "{name}"
        );
    }
}

/// Repeating an identical check through the registry hits the plan cache
/// (the ISSUE's metrics-v4 acceptance criterion), and the counters
/// surface in a schema-valid v4 document.
#[test]
fn repeated_checks_hit_the_plan_cache_and_metrics_v4_records_it() {
    let mut ck = Checker::new(
        customer_db(),
        CheckerOptions {
            telemetry: true,
            ..Default::default()
        },
    );
    let mut reg = ConstraintRegistry::new();
    for (name, f) in corpus() {
        assert!(reg.register(name, f));
    }
    let first = reg.validate_all(&mut ck).unwrap();
    let second = reg.validate_all(&mut ck).unwrap();
    for ((n1, r1), (_, r2)) in first.iter().zip(&second) {
        assert_eq!((r1.holds, r1.verdict), (r2.holds, r2.verdict), "{n1}");
    }
    let stats = reg.plan_cache_stats();
    assert_eq!(
        stats.misses,
        first.len() as u64,
        "first round plans everything"
    );
    assert_eq!(
        stats.hits,
        second.len() as u64,
        "second round reuses every plan"
    );
    let mut metrics = RunMetrics::from_reports(&second, None, 1);
    metrics.plan_cache = Some(stats);
    let doc = metrics.to_json();
    validate_metrics_json(&doc).unwrap();
    assert!(
        doc.contains(&format!(
            "\"plan_cache\":{{\"hits\":{},\"misses\":{}}}",
            stats.hits, stats.misses
        )),
        "v4 document carries the counters: {doc}"
    );
}

/// The staleness regression from the ISSUE: mutate a relation between two
/// checks of the same constraint — the cached plan must be invalidated
/// (a miss, not a hit) and the second verdict must reflect the new data.
#[test]
fn mutating_a_relation_invalidates_cached_plans() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    let mut reg = ConstraintRegistry::new();
    let f = parse(INCLUSION).unwrap();
    assert!(reg.register("inclusion", f.clone()));

    // (Newark, 212) is not ALLOWED: violated on the seed data.
    assert!(!reg.check_cached(&mut ck, &f).unwrap().holds);
    // Repair it by inserting the missing ALLOWED row...
    let newark = ck
        .logical_db()
        .db()
        .code("city", &Raw::str("Newark"))
        .unwrap();
    let code212 = ck
        .logical_db()
        .db()
        .code("areacode", &Raw::Int(212))
        .unwrap();
    ck.logical_db_mut()
        .insert_tuple("ALLOWED", &[newark, code212])
        .unwrap();
    // ...and the re-check must see the mutation, not a stale cached plan.
    assert!(reg.check_cached(&mut ck, &f).unwrap().holds);
    let stats = reg.plan_cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 2),
        "the mutation must force a replan"
    );

    // Unchanged data: now it caches.
    assert!(reg.check_cached(&mut ck, &f).unwrap().holds);
    assert_eq!(reg.plan_cache_stats().hits, 1);
}

/// `rebuild_index` and `mark_sql_only` bump the checker's epoch, so plans
/// cached before either call never execute afterwards — even though no
/// tuple changed.
#[test]
fn rebuild_and_sql_only_invalidate_cached_plans() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    let mut reg = ConstraintRegistry::new();
    let f = parse(FD).unwrap();
    assert!(reg.register("fd", f.clone()));

    let r1 = reg.check_cached(&mut ck, &f).unwrap();
    assert_eq!(r1.method, Method::Bdd);

    ck.rebuild_index("CUST").unwrap();
    let r2 = reg.check_cached(&mut ck, &f).unwrap();
    assert_eq!((r1.holds, r1.verdict), (r2.holds, r2.verdict));

    ck.mark_sql_only("CUST");
    let r3 = reg.check_cached(&mut ck, &f).unwrap();
    assert_eq!(
        r3.method,
        Method::SqlFallback,
        "the post-flip plan must route around the BDD step"
    );
    assert_eq!((r1.holds, r1.verdict), (r3.holds, r3.verdict));

    let stats = reg.plan_cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 3),
        "every configuration change must miss"
    );
}

/// A constraint referencing a SQL-only relation plans with no BDD step at
/// all, and the plan's declared ladder matches what executing it reports.
#[test]
fn sql_only_plans_skip_the_bdd_rung() {
    let mut ck = Checker::new(
        customer_db(),
        CheckerOptions {
            telemetry: true,
            ..Default::default()
        },
    );
    ck.mark_sql_only("CUST");
    let f = parse(INCLUSION).unwrap();
    let plan = ck.plan(&f).unwrap();
    assert!(plan.bdd.is_none(), "sql-only relation suppresses the step");
    assert_eq!(plan.ladder(), vec!["sql", "brute_force"]);
    let report = ck.check(&f).unwrap();
    assert_eq!(report.method, Method::SqlFallback);
    let trace = report.metrics.expect("telemetry on");
    assert_eq!(trace.ladder, vec!["sql"], "decided on the first rung tried");
    assert!(
        trace.passes.is_empty(),
        "no BDD step planned, so no passes ran"
    );
}

/// Per-pass firing counts surface in the trace (telemetry v4): the
/// pipeline order and the fired counters must match the plan's records.
#[test]
fn traces_carry_per_pass_firing_counts() {
    let mut ck = Checker::new(
        customer_db(),
        CheckerOptions {
            telemetry: true,
            ..Default::default()
        },
    );
    let report = ck.check(&parse(EQUI_JOIN).unwrap()).unwrap();
    let trace = report.metrics.expect("telemetry on");
    let got: Vec<(&str, u64, u64)> = trace
        .passes
        .iter()
        .map(|p| (p.pass, p.fired, p.gated))
        .collect();
    assert_eq!(
        got,
        vec![
            ("prenex-pullup", 3, 0),
            ("strip-leading-block", 2, 0),
            ("refutation-nnf", 1, 0),
            ("forall-pushdown", 1, 0),
        ]
    );
}
