//! Differential and robustness tests for the parallel checking engine:
//! [`Checker::check_all_parallel`] / [`ParallelChecker`] must produce
//! results identical (on the deterministic report fields `holds` and
//! `method`) to the serial [`Checker::check_all`], for every worker count,
//! every ordering strategy, and both index-transfer modes — and a node-
//! budget abort in one worker lane must degrade that lane to SQL without
//! touching any other lane.

use relcheck_core::checker::{Checker, CheckerOptions, Method};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_core::parallel::{IndexTransfer, ParallelChecker};
use relcheck_core::registry::ConstraintRegistry;
use relcheck_datagen::customer::{generate, CustomerConfig};
use relcheck_datagen::gen_kprod;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};

/// A miniature customer database (CUST + CITY_STATE) with a sprinkling of
/// injected violations so the battery exercises both verdicts.
fn customer_db(rows: usize, violation_rate: f64) -> Database {
    let data = generate(&CustomerConfig {
        rows,
        dom_sizes: [40, 120, 150, 12, 200],
        violation_rate,
        seed: 23,
    });
    let mut db = Database::new();
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    let cust = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation.rows().map(|r| vec![r[0], r[2], r[3]]),
    )
    .unwrap();
    db.insert_relation("CUST", cust).unwrap();
    let cs: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    db
}

fn customer_battery() -> Vec<(String, Formula)> {
    [
        (
            "reference-agrees",
            "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "city-determines-state",
            "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
        ),
        (
            "areacode-determines-state",
            "forall a, c1, s1, c2, s2. CUST(a, c1, s1) & CUST(a, c2, s2) -> s1 = s2",
        ),
        (
            "cities-are-known",
            "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
        ),
        (
            "reference-is-functional",
            "forall c, s1, s2. CITY_STATE(c, s1) & CITY_STATE(c, s2) -> s1 = s2",
        ),
        ("reference-nonempty", "exists c, s. CITY_STATE(c, s)"),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

/// Compare the deterministic fields of two report lists.
fn assert_reports_match(
    want: &[(String, relcheck_core::checker::CheckReport)],
    got: &[(String, relcheck_core::checker::CheckReport)],
    context: &str,
) {
    assert_eq!(want.len(), got.len(), "{context}: length");
    for ((wn, wr), (gn, gr)) in want.iter().zip(got) {
        assert_eq!(wn, gn, "{context}: order");
        assert_eq!(wr.holds, gr.holds, "{context}: {wn} holds");
        assert_eq!(wr.method, gr.method, "{context}: {wn} method");
    }
}

#[test]
fn parallel_matches_serial_on_customer_data_across_strategies() {
    let db = customer_db(2_000, 0.01);
    let battery = customer_battery();
    let strategies = [
        OrderingStrategy::Schema,
        OrderingStrategy::Random(7),
        OrderingStrategy::MaxInfGain,
        OrderingStrategy::ProbConverge,
        OrderingStrategy::MinCondEntropy,
        OrderingStrategy::Sifted,
    ];
    for strategy in strategies {
        let opts = CheckerOptions {
            ordering: strategy,
            ..Default::default()
        };
        let mut serial = Checker::new(db.clone(), opts);
        let want = serial.check_all(&battery).unwrap();
        for threads in [1usize, 2, 8] {
            let mut ck = Checker::new(db.clone(), opts);
            let got = ck.check_all_parallel(&battery, threads).unwrap();
            assert_reports_match(&want, &got, &format!("{strategy:?}/threads={threads}"));
        }
    }
}

#[test]
fn parallel_matches_serial_on_kprod_data() {
    // Two independent k-PROD relations plus a cross-relation inclusion.
    let g1 = gen_kprod(3, 24, 1_500, 2, 301);
    let g2 = gen_kprod(3, 24, 1_500, 1, 302);
    let mut db = Database::new();
    for (i, g) in [&g1, &g2].into_iter().enumerate() {
        for (c, &size) in g.dom_sizes.iter().enumerate() {
            db.ensure_class_size(&format!("r{i}c{c}"), size);
        }
        let cols: Vec<(String, String)> = (0..3)
            .map(|c| (format!("v{c}"), format!("r{i}c{c}")))
            .collect();
        let refs: Vec<(&str, &str)> = cols.iter().map(|(n, c)| (n.as_str(), c.as_str())).collect();
        let rel = Relation::from_rows(Schema::new(&refs), g.relation.rows()).unwrap();
        db.insert_relation(if i == 0 { "P" } else { "Q" }, rel)
            .unwrap();
    }
    let battery: Vec<(String, Formula)> = [
        ("p-nonempty", "exists x, y, z. P(x, y, z)"),
        ("q-nonempty", "exists x, y, z. Q(x, y, z)"),
        (
            "p-fd",
            "forall x, y1, z1, y2, z2. P(x, y1, z1) & P(x, y2, z2) -> y1 = y2",
        ),
        (
            "q-fd",
            "forall x, y1, z1, y2, z2. Q(x, y1, z1) & Q(x, y2, z2) -> z1 = z2",
        ),
        (
            "p-col0-bound",
            "forall x, y, z. P(x, y, z) -> exists y2, z2. P(x, y2, z2)",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect();
    let mut serial = Checker::new(db.clone(), CheckerOptions::default());
    let want = serial.check_all(&battery).unwrap();
    for threads in [1usize, 2, 8] {
        let mut ck = Checker::new(db.clone(), CheckerOptions::default());
        let got = ck.check_all_parallel(&battery, threads).unwrap();
        assert_reports_match(&want, &got, &format!("kprod/threads={threads}"));
        // Rebuild mode: workers construct their own indices from scratch.
        let pc = ParallelChecker::new(db.clone(), CheckerOptions::default(), threads)
            .with_transfer(IndexTransfer::Rebuild);
        let got = pc.check_all(&battery).unwrap();
        assert_reports_match(&want, &got, &format!("kprod-rebuild/threads={threads}"));
    }
}

#[test]
fn lanes_fall_back_to_sql_independently() {
    // A node budget big enough for the tiny CITY_STATE index but far too
    // small for CUST: every CUST-reading lane must abort its index build
    // and fall back to SQL, while the CITY_STATE-only lane stays on the
    // BDD path — no cross-worker poisoning in either direction.
    let db = customer_db(2_000, 0.01);
    let battery = customer_battery();
    let opts = CheckerOptions {
        node_limit: Some(3_000),
        ..Default::default()
    };
    let mut serial = Checker::new(db.clone(), opts);
    let want = serial.check_all(&battery).unwrap();
    let methods: Vec<Method> = want.iter().map(|(_, r)| r.method).collect();
    // The fixture must actually exercise both paths for the test to mean
    // anything.
    assert!(
        methods.contains(&Method::SqlFallback),
        "CUST lanes must abort: {methods:?}"
    );
    assert!(
        methods.contains(&Method::Bdd),
        "CITY_STATE lanes must stay BDD: {methods:?}"
    );
    // Stress loop: repeated runs across worker counts and transfer modes
    // must all agree with the serial pass — the merged report flags the
    // fallback per constraint.
    for round in 0..5 {
        for threads in [2usize, 4, 8] {
            let mut ck = Checker::new(db.clone(), opts);
            let got = ck.check_all_parallel(&battery, threads).unwrap();
            assert_reports_match(&want, &got, &format!("round={round}/threads={threads}"));
            let pc = ParallelChecker::new(db.clone(), opts, threads)
                .with_transfer(IndexTransfer::Rebuild);
            let got = pc.check_all(&battery).unwrap();
            assert_reports_match(
                &want,
                &got,
                &format!("rebuild round={round}/threads={threads}"),
            );
        }
    }
}

#[test]
fn registry_parallel_validation_matches_serial_and_caches() {
    let db = customer_db(1_000, 0.02);
    let battery = customer_battery();
    let mut serial_reg = ConstraintRegistry::new();
    let mut parallel_reg = ConstraintRegistry::new();
    for (name, f) in &battery {
        assert!(serial_reg.register(name, f.clone()));
        assert!(parallel_reg.register(name, f.clone()));
    }
    let mut serial_ck = Checker::new(db.clone(), CheckerOptions::default());
    let want = serial_reg.validate_all(&mut serial_ck).unwrap();
    let mut parallel_ck = Checker::new(db, CheckerOptions::default());
    let got = parallel_reg
        .validate_all_parallel(&mut parallel_ck, 4)
        .unwrap();
    assert_reports_match(&want, &got, "registry");
    // The cache is refreshed exactly as the serial pass would.
    assert_eq!(serial_reg.cached(), parallel_reg.cached());
    // And a follow-up revalidation with no touched relations serves
    // everything from that cache.
    let verdicts = parallel_reg.revalidate(&mut parallel_ck, &[]).unwrap();
    assert!(verdicts
        .iter()
        .all(|(_, v)| matches!(v, relcheck_core::registry::Verdict::Cached { .. })));
}

#[test]
fn worker_errors_surface_deterministically() {
    // Two constraints reference relations that do not exist; the error
    // reported must be the one a serial pass would hit first (smallest
    // constraint index), whichever lane it ran on.
    let db = customer_db(200, 0.0);
    let battery: Vec<(String, Formula)> = [
        ("ok-1", "exists c, s. CITY_STATE(c, s)"),
        ("bad-1", "exists x. NOPE_ONE(x)"),
        ("ok-2", "exists a, c, s. CUST(a, c, s)"),
        ("bad-2", "exists x. NOPE_TWO(x)"),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect();
    for _ in 0..5 {
        let pc = ParallelChecker::new(db.clone(), CheckerOptions::default(), 4)
            .with_transfer(IndexTransfer::Rebuild);
        let err = pc.check_all(&battery).unwrap_err();
        assert!(
            err.to_string().contains("NOPE_ONE"),
            "expected the first bad constraint's error, got: {err}"
        );
    }
}

#[test]
fn parallel_rule_firings_match_serial_exactly() {
    // Differential telemetry test: not just the verdicts, but the exact
    // per-constraint R1–R4 firing sequences (rule identity AND count) must
    // be identical between the serial pass and every parallel
    // configuration — the rewrite pipeline is deterministic per
    // constraint, so lane placement must not change what it does.
    // Timings are deliberately excluded from the comparison.
    let db = customer_db(1_500, 0.01);
    let battery = customer_battery();
    let opts = CheckerOptions {
        telemetry: true,
        ..Default::default()
    };
    let firing_seq = |reports: &[(String, relcheck_core::checker::CheckReport)]| {
        reports
            .iter()
            .map(|(n, r)| {
                let trace = r.metrics.as_ref().expect("telemetry enabled");
                (
                    n.clone(),
                    trace
                        .rules
                        .iter()
                        .map(|f| (f.rule, f.count))
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let mut serial = Checker::new(db.clone(), opts);
    let want_reports = serial.check_all(&battery).unwrap();
    let want = firing_seq(&want_reports);
    // The battery must actually fire rules for the test to mean anything.
    assert!(
        want.iter().any(|(_, rs)| !rs.is_empty()),
        "fixture fires no rewrite rules: {want:?}"
    );
    for threads in [1usize, 2, 8] {
        for transfer in [IndexTransfer::Snapshot, IndexTransfer::Rebuild] {
            let pc = ParallelChecker::new(db.clone(), opts, threads).with_transfer(transfer);
            let got_reports = pc.check_all(&battery).unwrap();
            assert_reports_match(
                &want_reports,
                &got_reports,
                &format!("{transfer:?}/threads={threads}"),
            );
            assert_eq!(
                want,
                firing_seq(&got_reports),
                "{transfer:?}/threads={threads}: rule firings diverge from serial"
            );
        }
    }
}

#[test]
fn more_threads_than_constraints_is_fine() {
    let db = customer_db(300, 0.0);
    let battery = customer_battery();
    let mut serial = Checker::new(db.clone(), CheckerOptions::default());
    let want = serial.check_all(&battery).unwrap();
    let mut ck = Checker::new(db, CheckerOptions::default());
    let got = ck.check_all_parallel(&battery, 64).unwrap();
    assert_reports_match(&want, &got, "threads=64");
}
