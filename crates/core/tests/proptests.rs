//! Differential property tests: BDD path ≡ SQL path ≡ brute-force oracle.
//!
//! Random small databases and random well-sorted constraint sentences are
//! generated; every evaluation strategy the system has (BDD with/without
//! rewrites, rename vs naive joins, SQL plans, brute force, and the full
//! checker with an aggressive node budget forcing fallbacks) must agree on
//! whether each constraint holds.
// Gated behind the off-by-default `fuzz` feature: proptest is an external
// dependency and the tier-1 verify must build with no network access. Run
// with `cargo test --features fuzz` in an environment with a vendored
// proptest.
#![cfg(feature = "fuzz")]

use proptest::prelude::*;
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::compile::{check_bdd, CompileOptions};
use relcheck_core::index::LogicalDatabase;
use relcheck_core::ordering::OrderingStrategy;
use relcheck_logic::eval::eval_sentence;
use relcheck_logic::{Formula, Term};
use relcheck_relstore::{Database, Raw};

const K1: u64 = 4; // class k1 active-domain size
const K2: u64 = 3;
const K3: u64 = 3;

/// Variable pool with fixed sorts (so random formulas are always
/// well-sorted): x* : k1, y* : k2, z* : k3.
const XS: [&str; 2] = ["x1", "x2"];
const YS: [&str; 2] = ["y1", "y2"];
const ZS: [&str; 1] = ["z1"];

fn build_db(r_rows: &[(u64, u64)], s_rows: &[(u64, u64)]) -> Database {
    let mut db = Database::new();
    // Pre-populate the class dictionaries densely so codes == values and
    // every constant in generated formulas is resolvable.
    db.ensure_class_size("k1", K1);
    db.ensure_class_size("k2", K2);
    db.ensure_class_size("k3", K3);
    db.create_relation(
        "R",
        &[("a", "k1"), ("b", "k2")],
        r_rows
            .iter()
            .map(|&(a, b)| vec![Raw::Int(a as i64), Raw::Int(b as i64)])
            .collect(),
    )
    .unwrap();
    db.create_relation(
        "S",
        &[("c", "k2"), ("d", "k3")],
        s_rows
            .iter()
            .map(|&(c, d)| vec![Raw::Int(c as i64), Raw::Int(d as i64)])
            .collect(),
    )
    .unwrap();
    db
}

/// A quantifier-free matrix over the fixed variable pool.
fn arb_matrix() -> impl Strategy<Value = Formula> {
    let atom_r = (0usize..2, 0usize..2)
        .prop_map(|(i, j)| Formula::atom("R", vec![Term::var(XS[i]), Term::var(YS[j])]));
    let atom_s = (0usize..2, 0usize..1)
        .prop_map(|(j, k)| Formula::atom("S", vec![Term::var(YS[j]), Term::var(ZS[k])]));
    let eq_xx = Just(Formula::Eq(Term::var(XS[0]), Term::var(XS[1])));
    let eq_yy = Just(Formula::Eq(Term::var(YS[0]), Term::var(YS[1])));
    let eq_const = (0usize..2, 0..K1 as i64)
        .prop_map(|(i, c)| Formula::Eq(Term::var(XS[i]), Term::Const(Raw::Int(c))));
    let in_set =
        (0usize..2, proptest::collection::vec(0..K2 as i64, 0..3)).prop_map(|(j, vals)| {
            Formula::InSet(Term::var(YS[j]), vals.into_iter().map(Raw::Int).collect())
        });
    let leaf = prop_oneof![atom_r, atom_s, eq_xx, eq_yy, eq_const, in_set];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

/// Close the matrix under a random quantifier pattern over all five pool
/// variables (every generated formula becomes a sentence).
fn arb_sentence() -> impl Strategy<Value = Formula> {
    (
        arb_matrix(),
        proptest::collection::vec(any::<bool>(), 5),
        any::<u8>(),
    )
        .prop_map(|(matrix, quants, order_seed)| {
            // Quantify only the variables the matrix actually uses —
            // vacuous quantification has no inferable sort (a documented
            // design decision of the sort checker).
            let free = matrix.free_vars();
            let mut vars: Vec<&str> = XS
                .iter()
                .chain(YS.iter())
                .chain(ZS.iter())
                .copied()
                .filter(|v| free.iter().any(|f| f == v))
                .collect();
            // Cheap deterministic shuffle of the binding order.
            let mut s = order_seed as u64 | 1;
            for i in (1..vars.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                vars.swap(i, (s >> 33) as usize % (i + 1));
            }
            let mut f = matrix;
            for (v, ex) in vars.into_iter().zip(quants) {
                f = if ex {
                    Formula::Exists(vec![v.to_owned()], Box::new(f))
                } else {
                    Formula::Forall(vec![v.to_owned()], Box::new(f))
                };
            }
            f
        })
}

fn arb_rows_r() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..K1, 0..K2), 0..8)
}

fn arb_rows_s() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..K2, 0..K3), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bdd_variants_match_oracle(
        f in arb_sentence(),
        r_rows in arb_rows_r(),
        s_rows in arb_rows_s(),
    ) {
        let db = build_db(&r_rows, &s_rows);
        // Formulas whose variables never touch an atom have no inferable
        // sort — rejected by design across the whole stack; skip them.
        let expected = match eval_sentence(&db, &f) {
            Ok(v) => v,
            Err(relcheck_logic::LogicError::UnsortedVariable(_)) => {
                prop_assume!(false);
                unreachable!()
            }
            Err(e) => panic!("oracle failed: {e}"),
        };
        for use_rewrites in [true, false] {
            for join_rename in [true, false] {
                let mut ldb = LogicalDatabase::new(build_db(&r_rows, &s_rows));
                ldb.build_index("R", OrderingStrategy::ProbConverge).unwrap();
                ldb.build_index("S", OrderingStrategy::MaxInfGain).unwrap();
                let opts = CompileOptions { use_rewrites, join_rename };
                let got = check_bdd(&mut ldb, &f, &opts).unwrap();
                prop_assert_eq!(
                    got, expected,
                    "rewrites={} rename={} formula={}", use_rewrites, join_rename, &f
                );
            }
        }
    }

    #[test]
    fn checker_with_tiny_budget_matches_oracle(
        f in arb_sentence(),
        r_rows in arb_rows_r(),
        s_rows in arb_rows_s(),
        budget in prop_oneof![Just(Some(25usize)), Just(Some(200)), Just(None)],
    ) {
        let db = build_db(&r_rows, &s_rows);
        let expected = match eval_sentence(&db, &f) {
            Ok(v) => v,
            Err(relcheck_logic::LogicError::UnsortedVariable(_)) => {
                prop_assume!(false);
                unreachable!()
            }
            Err(e) => panic!("oracle failed: {e}"),
        };
        let opts = CheckerOptions { node_limit: budget, ..Default::default() };
        let mut ck = Checker::new(build_db(&r_rows, &s_rows), opts);
        let report = ck.check(&f).unwrap();
        prop_assert_eq!(report.holds, expected, "budget={:?} formula={}", budget, &f);
    }

    #[test]
    fn sql_plan_matches_oracle_when_translatable(
        r_rows in arb_rows_r(),
        s_rows in arb_rows_s(),
        set in proptest::collection::vec(0..K2 as i64, 0..3),
        pin in 0..K1 as i64,
    ) {
        use relcheck_core::sqlgen::{violation_plan, Shape};
        use relcheck_relstore::plan::execute;
        let db = build_db(&r_rows, &s_rows);
        // A family of in-class constraints exercising joins, filters, ∃.
        let sources = [
            format!("forall x1, y1. R(x1, y1) & x1 = {pin} -> exists z1. S(y1, z1)"),
            format!(
                "forall x1, y1. R(x1, y1) -> y1 in {{{}}}",
                set.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            ),
            "forall x1, y1, x2, y2. R(x1, y1) & R(x2, y2) & x1 = x2 -> y1 = y2".to_owned(),
            "exists x1, y1, z1. R(x1, y1) & S(y1, z1)".to_owned(),
            "forall x1, y1. !(R(x1, y1) & y1 = 0)".to_owned(),
            // Negated atom in a denial (anti-join path).
            "forall x1, y1. !(R(x1, y1) & !S(y1, 0))".to_owned(),
            "forall x1, y1, z1. R(x1, y1) & S(y1, z1) & !R(x1, 0) -> z1 = 1".to_owned(),
        ];
        for src in &sources {
            let f = relcheck_logic::parse(src).unwrap();
            let expected = eval_sentence(&db, &f).unwrap();
            let t = violation_plan(&db, &f).unwrap_or_else(|| panic!("untranslatable {src}"));
            let out = execute(&db, &t.plan).unwrap();
            let got = match t.shape {
                Shape::Violations => out.is_empty(),
                Shape::Witnesses => !out.is_empty(),
            };
            prop_assert_eq!(got, expected, "{}", src);
        }
    }

    #[test]
    fn violation_count_matches_oracle(
        r_rows in arb_rows_r(),
        set in proptest::collection::vec(0..K2 as i64, 0..3),
    ) {
        // Count violating premise rows by brute force and compare with
        // find_violations.
        let db = build_db(&r_rows, &[]);
        let set_raws: Vec<i64> = set.clone();
        let f = relcheck_logic::parse(&format!(
            "forall x1, y1. R(x1, y1) -> y1 in {{{}}}",
            set_raws.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        ))
        .unwrap();
        let mut ck = Checker::new(db, CheckerOptions::default());
        let (viol, _cols) = ck.find_violations(&f).unwrap();
        let expected = r_rows
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .iter()
            .filter(|&&&(_, b)| !set_raws.contains(&(b as i64)))
            .count();
        prop_assert_eq!(viol.len(), expected);
    }
}
