//! Acceptance tests for violation certificates: every decided verdict's
//! certificate must survive the independent naive re-check, the JSON
//! round-trip must be byte-stable, and any tampering — witness values,
//! verdicts, formula text, fingerprints, counts — must be rejected with a
//! *typed* error, never silently accepted.

use relcheck_core::certify::{
    bundle_to_json, emit_certificate, emit_certificates, parse_bundle, verify_bundle,
    verify_certificate, AuditError, Certificate, CERTIFICATE_VERSION,
};
use relcheck_core::checker::{Checker, CheckerOptions, Verdict};
use relcheck_core::registry::ConstraintRegistry;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};

/// The worked example from the paper: Toronto area codes, a reference
/// city→state table, and a handful of constraints with known verdicts.
fn phones_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "CUST",
        &[
            ("city", "city"),
            ("areacode", "areacode"),
            ("state", "state"),
        ],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
            vec![Raw::str("Toronto"), Raw::Int(212), Raw::str("ON")], // bad prefix
            vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
            vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NY")], // state conflict
            vec![Raw::str("Ithaca"), Raw::Int(607), Raw::str("NY")],
        ],
    )
    .unwrap();
    db.create_relation(
        "CITY_STATE",
        &[("city", "city"), ("state", "state")],
        vec![
            vec![Raw::str("Toronto"), Raw::str("ON")],
            vec![Raw::str("Newark"), Raw::str("NJ")],
            vec![Raw::str("Ithaca"), Raw::str("NY")],
        ],
    )
    .unwrap();
    db
}

fn battery() -> Vec<(String, Formula)> {
    [
        (
            "toronto-prefixes",
            r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647, 905}"#,
        ),
        (
            "city-determines-state",
            "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2",
        ),
        (
            "reference-agrees",
            "forall c, a, s, s2. CUST(c, a, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "cities-are-known",
            "forall c, a, s. CUST(c, a, s) -> exists s2. CITY_STATE(c, s2)",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

/// Check every battery constraint and emit its certificate.
fn emit_all(witness_limit: usize) -> (Database, Vec<(String, Formula)>, Vec<Certificate>) {
    let db = phones_db();
    let battery = battery();
    let mut checker = Checker::new(db.clone(), CheckerOptions::default());
    let mut registry = ConstraintRegistry::new();
    for (n, f) in &battery {
        assert!(registry.register(n, f.clone()));
    }
    let reports = registry.validate_all(&mut checker).unwrap();
    let certs = emit_certificates(&mut checker, &battery, &reports, witness_limit).unwrap();
    (db, battery, certs)
}

/// Every decided verdict — Violated with witnesses, Violated truncated,
/// Holds — self-verifies under the independent naive re-checker.
#[test]
fn every_decided_certificate_self_verifies() {
    let (db, battery, certs) = emit_all(10);
    assert_eq!(certs.len(), battery.len());
    let violated: Vec<_> = certs
        .iter()
        .filter(|c| c.verdict == Verdict::Violated)
        .collect();
    assert_eq!(violated.len(), 3, "the fixture plants three violations");
    for c in &violated {
        let w = c
            .witnesses
            .as_ref()
            .expect("BDD-decided violations carry witnesses");
        assert!(!w.tuples.is_empty());
        assert!(!w.truncated, "limit 10 covers the whole violation set");
        assert_eq!(w.total, w.tuples.len() as f64);
    }
    for (name, res) in verify_bundle(&db, &battery, &certs) {
        let outcome = res.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(outcome.recounted || outcome.verdict == Verdict::Holds);
    }
}

/// A witness limit of 1 truncates the enumeration; the certificate says
/// so, records the exact total, and still verifies (the auditor checks
/// the carried prefix and recounts the total independently).
#[test]
fn truncated_witnesses_still_verify_with_exact_total() {
    let (db, battery, certs) = emit_all(1);
    let cds = certs
        .iter()
        .find(|c| c.constraint == "city-determines-state")
        .unwrap();
    let w = cds.witnesses.as_ref().unwrap();
    assert_eq!(w.tuples.len(), 1);
    assert!(w.truncated);
    assert!(
        w.total > 1.0,
        "Newark conflicts both ways: total {}",
        w.total
    );
    let outcome = verify_certificate(&db, &battery, cds).unwrap();
    assert_eq!(outcome.witnesses_checked, 1);
    assert!(outcome.recounted);
}

/// Satellite: emit → serialize → parse → serialize must be byte-stable,
/// and the parsed structures must equal the originals.
#[test]
fn json_round_trip_is_byte_stable() {
    for limit in [0usize, 1, 10] {
        let (_, _, certs) = emit_all(limit);
        let json = bundle_to_json(&certs);
        let parsed = parse_bundle(&json).unwrap();
        assert_eq!(parsed, certs, "limit {limit}");
        assert_eq!(bundle_to_json(&parsed), json, "limit {limit}");
        // Single-certificate documents round-trip too.
        for c in &certs {
            let one = c.to_json();
            let back = parse_bundle(&one).unwrap();
            assert_eq!(back.len(), 1);
            assert_eq!(&back[0], c);
            assert_eq!(back[0].to_json(), one);
        }
    }
}

/// Satellite: a bit-flip inside a witness tuple — rendering a value that
/// is not even in the attribute's active domain — is rejected with the
/// typed `WitnessValueUnknown` error, through the full JSON path.
#[test]
fn witness_value_bit_flip_is_rejected() {
    let (db, battery, certs) = emit_all(10);
    let json = bundle_to_json(&certs);
    assert!(json.contains(r#"{"int":212}"#), "fixture witness changed?");
    let tampered = json.replace(r#"{"int":212}"#, r#"{"int":213}"#);
    assert_ne!(tampered, json);
    let certs = parse_bundle(&tampered).unwrap();
    let failures: Vec<_> = verify_bundle(&db, &battery, &certs)
        .into_iter()
        .filter_map(|(n, r)| r.err().map(|e| (n, e)))
        .collect();
    assert_eq!(failures.len(), 1, "exactly the tampered certificate fails");
    assert!(
        matches!(failures[0].1, AuditError::WitnessValueUnknown { .. }),
        "got {:?}",
        failures[0].1
    );
}

/// A witness swapped for a real-but-satisfying tuple is caught by the
/// per-witness falsification check, not just domain membership.
#[test]
fn satisfying_witness_is_rejected() {
    let (db, battery, certs) = emit_all(10);
    let mut cert = certs
        .iter()
        .find(|c| c.constraint == "toronto-prefixes")
        .unwrap()
        .clone();
    // (Toronto, 416, ON) is a perfectly legal customer row — it does not
    // falsify the constraint, so it cannot be a witness.
    cert.witnesses.as_mut().unwrap().tuples[0] =
        vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")];
    match verify_certificate(&db, &battery, &cert) {
        Err(AuditError::WitnessNotViolating { index: 0, .. }) => {}
        other => panic!("expected WitnessNotViolating, got {other:?}"),
    }
}

/// A forged verdict — Holds claimed for a violated constraint, and the
/// reverse — is caught by full re-evaluation.
#[test]
fn forged_verdicts_are_rejected() {
    let (db, battery, certs) = emit_all(10);
    let mut violated = certs
        .iter()
        .find(|c| c.constraint == "toronto-prefixes")
        .unwrap()
        .clone();
    violated.verdict = Verdict::Holds;
    violated.witnesses = None;
    match verify_certificate(&db, &battery, &violated) {
        Err(AuditError::VerdictMismatch {
            claimed: Verdict::Holds,
            reevaluated_holds: false,
            ..
        }) => {}
        other => panic!("expected VerdictMismatch, got {other:?}"),
    }
    let mut holds = certs
        .iter()
        .find(|c| c.constraint == "cities-are-known")
        .unwrap()
        .clone();
    holds.verdict = Verdict::Violated;
    match verify_certificate(&db, &battery, &holds) {
        Err(AuditError::VerdictMismatch {
            claimed: Verdict::Violated,
            reevaluated_holds: true,
            ..
        }) => {}
        other => panic!("expected VerdictMismatch, got {other:?}"),
    }
}

/// Tampering with the formula text or the fingerprint breaks the
/// fingerprint chain; substituting a different registered constraint's
/// formula (fingerprint-consistent!) is caught by the registry cross-check.
#[test]
fn formula_and_fingerprint_tampering_is_rejected() {
    let (db, battery, certs) = emit_all(10);
    let base = certs
        .iter()
        .find(|c| c.constraint == "toronto-prefixes")
        .unwrap();

    let mut edited = base.clone();
    edited.formula = edited.formula.replace("416", "417");
    assert!(matches!(
        verify_certificate(&db, &battery, &edited),
        Err(AuditError::FingerprintMismatch { .. })
    ));

    let mut fp = base.clone();
    fp.constraint_fp ^= 1;
    assert!(matches!(
        verify_certificate(&db, &battery, &fp),
        Err(AuditError::FingerprintMismatch { .. })
    ));

    // A self-consistent formula+fingerprint pair that is not the
    // registered constraint: the claim is about the wrong sentence.
    let mut swapped = base.clone();
    let donor = certs
        .iter()
        .find(|c| c.constraint == "cities-are-known")
        .unwrap();
    swapped.formula = donor.formula.clone();
    swapped.constraint_fp = donor.constraint_fp;
    assert!(matches!(
        verify_certificate(&db, &battery, &swapped),
        Err(AuditError::FormulaMismatch { .. })
    ));

    let mut unknown = base.clone();
    unknown.constraint = "no-such-constraint".to_owned();
    assert!(matches!(
        verify_certificate(&db, &battery, &unknown),
        Err(AuditError::UnknownConstraint(_))
    ));
}

/// An inflated or deflated witness total fails the independent recount.
#[test]
fn tampered_total_fails_recount() {
    let (db, battery, certs) = emit_all(10);
    let mut cert = certs
        .iter()
        .find(|c| c.constraint == "city-determines-state")
        .unwrap()
        .clone();
    let w = cert.witnesses.as_mut().unwrap();
    w.total += 1.0;
    w.truncated = true; // keep the document internally consistent
    match verify_certificate(&db, &battery, &cert) {
        Err(AuditError::CountMismatch {
            claimed, actual, ..
        }) => {
            assert_eq!(claimed, actual + 1.0);
        }
        other => panic!("expected CountMismatch, got {other:?}"),
    }
}

/// Undecided verdicts are never silently verified: a Degraded or Errored
/// certificate is a typed `Unauditable` rejection.
#[test]
fn undecided_certificates_are_unauditable() {
    let (db, battery, certs) = emit_all(10);
    for verdict in [Verdict::Degraded, Verdict::Errored] {
        let mut cert = certs[0].clone();
        cert.verdict = verdict;
        cert.witnesses = None;
        cert.rung = if verdict == Verdict::Degraded {
            "degraded".to_owned()
        } else {
            "errored".to_owned()
        };
        match verify_certificate(&db, &battery, &cert) {
            Err(AuditError::Unauditable { verdict: v, .. }) => assert_eq!(v, verdict),
            other => panic!("expected Unauditable, got {other:?}"),
        }
    }
}

/// Malformed documents fail parsing with typed errors: bad version, bad
/// rung vocabulary, non-JSON, wrong shapes.
#[test]
fn malformed_documents_are_rejected_at_parse_time() {
    let (_, _, certs) = emit_all(10);
    let one = certs[0].to_json();

    let bad_version = one.replace(
        &format!(r#""certificate_version":{CERTIFICATE_VERSION}"#),
        r#""certificate_version":99"#,
    );
    assert!(matches!(
        parse_bundle(&bad_version),
        Err(AuditError::UnsupportedVersion(99))
    ));

    let bad_rung = one.replace(r#""rung":"bdd""#, r#""rung":"warp-drive""#);
    assert!(matches!(
        parse_bundle(&bad_rung),
        Err(AuditError::Field { .. })
    ));

    let bad_verdict = one.replace(r#""verdict":"violated""#, r#""verdict":"maybe""#);
    assert!(matches!(
        parse_bundle(&bad_verdict),
        Err(AuditError::Field { .. })
    ));

    assert!(matches!(parse_bundle("not json"), Err(AuditError::Json(_))));
    assert!(matches!(parse_bundle("42"), Err(AuditError::Json(_))));
}

/// Witness attachment is limited to formulas whose violation set is
/// keyed by the syntactic leading universals; a constraint that is not
/// ∀-prefixed still certifies (witness-free) and still verifies.
#[test]
fn non_forall_prefixed_constraints_certify_witness_free() {
    let db = phones_db();
    let f = parse("exists c, a, s. CUST(c, a, s) & a = 212").unwrap();
    let battery = vec![("some-212".to_owned(), f.clone())];
    let mut checker = Checker::new(db.clone(), CheckerOptions::default());
    let report = checker.check(&f).unwrap();
    assert_eq!(report.verdict, Verdict::Holds);
    let cert = emit_certificate(&mut checker, "some-212", &f, &report, 10).unwrap();
    assert!(cert.witnesses.is_none());
    verify_certificate(&db, &battery, &cert).unwrap();
}
