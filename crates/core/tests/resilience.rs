//! Resilience acceptance tests for the checker: injected lane panics must
//! degrade exactly the poisoned lane, a wall-clock deadline must bound any
//! single constraint, and — the differential property — under *any* fault
//! profile every constraint either reproduces its fault-free verdict or is
//! explicitly `Degraded`/`Errored`. Never silently wrong.
//!
//! The failpoint registry is process-global, so every test in this binary
//! serializes on one mutex.

use relcheck_bdd::failpoint;
use relcheck_core::checker::{CheckReport, Checker, CheckerOptions, Method, Verdict};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_core::registry::ConstraintRegistry;
use relcheck_core::telemetry::{validate_metrics_json, FallbackReason, RunMetrics};
use relcheck_datagen::customer::{generate, CustomerConfig};
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};
use std::sync::Mutex;
use std::time::Duration;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Silence the default panic hook while a test injects panics on purpose;
/// the panics are caught and folded into reports, the stderr noise is not.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn restore_panics() {
    let _ = std::panic::take_hook();
}

/// A deliberately tiny customer database — small enough that even the
/// brute-force rung at the bottom of the ladder decides every battery
/// constraint in microseconds, so fault profiles that knock out both the
/// BDD and SQL paths still terminate fast.
fn mini_db() -> Database {
    let mut db = Database::new();
    for (class, size) in [("areacode", 6u64), ("city", 8), ("state", 4)] {
        db.ensure_class_size(class, size);
    }
    let mut rows: Vec<Vec<u32>> = Vec::new();
    let mut x = 9u64;
    for _ in 0..60 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % 6) as u32;
        let c = ((x >> 12) % 8) as u32;
        rows.push(vec![a, c, c % 4]);
    }
    rows.push(vec![0, 3, 2]); // breaks city→state and disagrees with the reference
    let cust = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        rows,
    )
    .unwrap();
    db.insert_relation("CUST", cust).unwrap();
    let cs: Vec<Vec<u32>> = (0..8u32).map(|c| vec![c, c % 4]).collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    db
}

fn battery() -> Vec<(String, Formula)> {
    [
        (
            "reference-agrees",
            "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "city-determines-state",
            "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
        ),
        (
            "areacode-determines-state",
            "forall a, c1, s1, c2, s2. CUST(a, c1, s1) & CUST(a, c2, s2) -> s1 = s2",
        ),
        (
            "cities-are-known",
            "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
        ),
        (
            "reference-is-functional",
            "forall c, s1, s2. CITY_STATE(c, s1) & CITY_STATE(c, s2) -> s1 = s2",
        ),
        ("reference-nonempty", "exists c, s. CITY_STATE(c, s)"),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

/// The ISSUE acceptance criterion: with a fault spec that panics one
/// parallel lane, the run completes, reports `Errored` for exactly that
/// lane's constraints, and every other lane's reports are identical to the
/// fault-free run.
#[test]
fn injected_lane_panic_degrades_only_its_lane() {
    let _g = lock();
    quiet_panics();
    let db = mini_db();
    let battery = battery();
    let opts = CheckerOptions {
        telemetry: true,
        ..Default::default()
    };
    let mut ck = Checker::new(db.clone(), opts);
    let want = ck.check_all_parallel(&battery, 2).unwrap();

    // Pick the first seed where, at p = 0.5, lane 1 panics and lane 0
    // does not — the decision function is pure, so we can search it.
    let seed = (0u64..)
        .find(|&s| {
            !failpoint::decide(s, failpoint::LANE_SPAWN, 0, 0.5)
                && failpoint::decide(s, failpoint::LANE_SPAWN, 1, 0.5)
        })
        .unwrap();
    failpoint::configure_spec("lane-spawn=0.5", seed).unwrap();
    let mut ck = Checker::new(db, opts);
    let got = ck.check_all_parallel(&battery, 2);
    failpoint::clear();
    restore_panics();
    let got = got.expect("a poisoned lane must not fail the whole run");

    let (mut errored, mut intact) = (0usize, 0usize);
    for ((wn, wr), (gn, gr)) in want.iter().zip(&got) {
        assert_eq!(wn, gn, "report order must be deterministic");
        if gr.verdict == Verdict::Errored {
            errored += 1;
            let msg = gr.error.as_deref().expect("errored report carries why");
            assert!(msg.contains("lane-spawn"), "{wn}: {msg}");
            assert_eq!(gr.method, Method::Aborted, "{wn}");
        } else {
            intact += 1;
            assert_eq!(
                (wr.holds, wr.verdict, wr.method),
                (gr.holds, gr.verdict, gr.method),
                "{wn}: healthy lanes must be untouched by the poisoned one"
            );
        }
    }
    assert!(errored > 0, "the poisoned lane's batch must surface");
    assert!(intact > 0, "the healthy lane must complete normally");
}

/// The other acceptance criterion: a constraint checked under a 10 ms
/// deadline terminates — with `FallbackReason::Deadline` in its trace and a
/// verdict decided by a lower rung of the ladder. The BDD path is made
/// deliberately expensive (adversarial random ordering, naive equality
/// cubes, no rewrites); row counts escalate until the compile genuinely
/// outlives the deadline on this machine.
#[test]
fn ten_ms_deadline_terminates_with_deadline_fallback() {
    let _g = lock();
    let heavy = parse(
        "forall a1, c1, s1, a2, c2, s2, a3, s3. CUST(a1, c1, s1) & CUST(a2, c2, s2) \
         & CUST(a3, c2, s3) & a1 = a2 & c1 = c2 -> s2 = s3",
    )
    .unwrap();
    for rows in [1_000usize, 4_000] {
        let data = generate(&CustomerConfig {
            rows,
            dom_sizes: [40, 120, 150, 12, 200],
            violation_rate: 0.01,
            seed: 23,
        });
        let mut db = Database::new();
        for (class, size) in [("areacode", 40u64), ("city", 150), ("state", 12)] {
            db.ensure_class_size(class, size);
        }
        let cust = Relation::from_rows(
            Schema::new(&[
                ("areacode", "areacode"),
                ("city", "city"),
                ("state", "state"),
            ]),
            data.relation.rows().map(|r| vec![r[0], r[2], r[3]]),
        )
        .unwrap();
        db.insert_relation("CUST", cust).unwrap();
        let ord = OrderingStrategy::Random(11);
        let mut ck = Checker::new(
            db,
            CheckerOptions {
                telemetry: true,
                plan: relcheck_core::PlanOptions::from_flags(false, false),
                ordering: ord,
                deadline: Some(Duration::from_millis(10)),
                ..Default::default()
            },
        );
        // Build the index outside the deadline window so the abort lands in
        // the compile itself, not in index construction.
        ck.logical_db_mut().build_index("CUST", ord).unwrap();
        let report = ck.check(&heavy).expect("a deadline abort is not an error");
        let trace = report.metrics.clone().expect("telemetry on");
        if matches!(trace.fallback, Some(FallbackReason::Deadline)) {
            assert_ne!(report.method, Method::Bdd, "the BDD rung was aborted");
            assert_eq!(trace.ladder.first(), Some(&"bdd"));
            assert!(
                trace.ladder.len() > 1,
                "the ladder must record the escalation: {:?}",
                trace.ladder
            );
            assert!(
                report.verdict.is_decided() || report.verdict == Verdict::Degraded,
                "got {:?}",
                report.verdict
            );
            return;
        }
        // Compile beat the deadline at this size — escalate.
    }
    panic!("BDD compile never outlived the 10ms deadline; fixture too small");
}

/// An already-expired deadline fires deterministically at the first
/// 256-step stride boundary, and the ladder still decides the constraint
/// via SQL with the abort recorded in the trace.
#[test]
fn expired_deadline_walks_ladder_and_still_decides() {
    let _g = lock();
    let db = mini_db();
    let f =
        parse("forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2").unwrap();
    let mut clean = Checker::new(
        db.clone(),
        CheckerOptions {
            telemetry: true,
            ..Default::default()
        },
    );
    let want = clean.check(&f).unwrap();
    assert_eq!(want.method, Method::Bdd);

    let mut ck = Checker::new(
        db,
        CheckerOptions {
            telemetry: true,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        },
    );
    ck.logical_db_mut()
        .build_index("CUST", OrderingStrategy::ProbConverge)
        .unwrap();
    let report = ck.check(&f).unwrap();
    let trace = report.metrics.clone().unwrap();
    assert_eq!(trace.fallback, Some(FallbackReason::Deadline));
    assert!(trace.ladder.contains(&"sql") || trace.ladder.contains(&"brute_force"));
    assert!(
        report.verdict.is_decided(),
        "SQL decides what BDD could not"
    );
    assert_eq!(report.holds, want.holds, "fallback verdict must agree");
}

/// The differential property over fault profiles: for every profile, every
/// constraint's report either (a) is decided and equal to the fault-free
/// verdict, or (b) is explicitly `Degraded`/`Errored` with a recorded
/// reason — and the telemetry document stays schema-valid throughout.
#[test]
fn fault_profiles_never_silently_change_a_verdict() {
    let _g = lock();
    quiet_panics();
    let db = mini_db();
    let battery = battery();
    let opts = CheckerOptions {
        telemetry: true,
        ..Default::default()
    };
    let mut ck = Checker::new(db.clone(), opts);
    let clean: Vec<(String, CheckReport)> = ck.check_all(&battery).unwrap();
    assert!(clean.iter().any(|(_, r)| !r.holds));
    assert!(clean.iter().any(|(_, r)| r.holds));

    let check = |profile: &str, got: &[(String, CheckReport)]| {
        assert_eq!(clean.len(), got.len(), "{profile}");
        for ((wn, wr), (gn, gr)) in clean.iter().zip(got) {
            assert_eq!(wn, gn, "{profile}: order");
            if gr.verdict.is_decided() {
                assert_eq!(
                    wr.holds, gr.holds,
                    "{profile}/{wn}: a decided verdict under faults must \
                     match the fault-free run"
                );
            } else {
                assert!(
                    matches!(gr.verdict, Verdict::Degraded | Verdict::Errored),
                    "{profile}/{wn}: undecided must be explicit"
                );
                if gr.verdict == Verdict::Errored {
                    assert!(gr.error.is_some(), "{profile}/{wn}: errored says why");
                }
            }
        }
    };

    let profiles: &[(&str, u64)] = &[
        ("index-build=1", 1),
        ("apply=1", 1),
        ("sql-fallback=1", 1),
        ("apply=1,sql-fallback=1", 1),
        ("snapshot-decode=1", 1),
        ("lane-spawn=0.5", 8),
        (
            "index-build=0.4,snapshot-decode=0.4,lane-spawn=0.4,apply=0.4,sql-fallback=0.4",
            3,
        ),
        (
            "index-build=0.4,snapshot-decode=0.4,lane-spawn=0.4,apply=0.4,sql-fallback=0.4",
            17,
        ),
    ];
    for &(spec, seed) in profiles {
        failpoint::configure_spec(spec, seed).unwrap();
        let mut ck = Checker::new(db.clone(), opts);
        let serial = ck.check_all(&battery);
        failpoint::clear();
        check(
            &format!("serial {spec} seed={seed}"),
            &serial.expect("faults must degrade, not fail the run"),
        );

        failpoint::configure_spec(spec, seed).unwrap();
        let mut ck = Checker::new(db.clone(), opts);
        let parallel = ck.check_all_parallel_telemetry(&battery, 2);
        let doc = parallel.as_ref().ok().map(|(reports, fleet)| {
            RunMetrics::from_reports(reports, Some(fleet.clone()), 2).to_json()
        });
        failpoint::clear();
        let (reports, _) = parallel.expect("faults must degrade, not fail the run");
        check(&format!("parallel {spec} seed={seed}"), &reports);
        validate_metrics_json(&doc.unwrap())
            .unwrap_or_else(|e| panic!("{spec} seed={seed}: invalid metrics: {e}"));
    }

    // A zero deadline is the harshest budget profile of all: everything
    // BDD-shaped aborts, yet every verdict is still decided (or explicitly
    // degraded) and still agrees with the fault-free run.
    let mut ck = Checker::new(
        db,
        CheckerOptions {
            telemetry: true,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        },
    );
    let got = ck.check_all(&battery).unwrap();
    check("deadline=0", &got);
    restore_panics();
}

/// The plan-cache path obeys the same differential contract: driving the
/// battery through a `ConstraintRegistry` (fingerprinted cached plans,
/// `check_cached`) under a fault profile must never silently change a
/// verdict — decided means equal to the fault-free run, anything else is
/// explicitly `Degraded`/`Errored`. After the faults clear, a second
/// validation round on the *same* registry (whatever plans it cached while
/// degraded) recovers every fault-free verdict.
#[test]
fn plan_cache_path_respects_the_fault_differential() {
    let _g = lock();
    quiet_panics();
    let db = mini_db();
    let battery = battery();
    let opts = CheckerOptions {
        telemetry: true,
        ..Default::default()
    };
    let mut ck = Checker::new(db.clone(), opts);
    let clean: Vec<(String, CheckReport)> = ck.check_all(&battery).unwrap();

    let profiles: &[(&str, u64)] = &[
        ("index-build=1", 1),
        ("apply=1", 1),
        ("sql-fallback=1", 1),
        ("apply=1,sql-fallback=1", 1),
        (
            "index-build=0.4,snapshot-decode=0.4,apply=0.4,sql-fallback=0.4",
            3,
        ),
    ];
    for &(spec, seed) in profiles {
        let mut ck = Checker::new(db.clone(), opts);
        let mut reg = ConstraintRegistry::new();
        for (n, f) in &battery {
            reg.register(n, f.clone());
        }
        failpoint::configure_spec(spec, seed).unwrap();
        let faulty = reg.validate_all(&mut ck);
        failpoint::clear();
        let faulty = faulty.expect("faults must degrade, not fail the run");
        assert_eq!(clean.len(), faulty.len(), "{spec}");
        for ((wn, wr), (gn, gr)) in clean.iter().zip(&faulty) {
            assert_eq!(wn, gn, "{spec}: order");
            if gr.verdict.is_decided() {
                assert_eq!(
                    wr.holds, gr.holds,
                    "{spec}/{wn}: a decided plan-cache verdict under faults \
                     must match the fault-free run"
                );
            } else {
                assert!(
                    matches!(gr.verdict, Verdict::Degraded | Verdict::Errored),
                    "{spec}/{wn}: undecided must be explicit"
                );
            }
        }

        // Recovery: same registry, faults gone. Every verdict is decided
        // again and equals the fault-free run — no stale degraded-era plan
        // may leak a wrong answer.
        let recovered = reg.validate_all(&mut ck).unwrap();
        for ((wn, wr), (gn, gr)) in clean.iter().zip(&recovered) {
            assert_eq!(wn, gn, "{spec}: recovery order");
            assert!(
                gr.verdict.is_decided(),
                "{spec}/{gn}: fault-free revalidation must decide"
            );
            assert_eq!(wr.holds, gr.holds, "{spec}/{wn}: recovery verdict");
        }

        // Exactly one cache probe per check, fault round or not.
        let pc = reg.plan_cache_stats();
        assert_eq!(
            pc.hits + pc.misses,
            2 * battery.len() as u64,
            "{spec}: every check_cached call probes the cache once"
        );
    }
    restore_panics();
}
