//! Differential acceptance tests for the workload-driven decision policy:
//! an auto-advised registry must produce **verdict-identical** results to
//! the static configuration on every fixture, no matter what the advisor
//! reroutes, reseeds, or resizes.
//!
//! Three lanes mirror the engines a deployment can run:
//!
//! * serial — [`ConstraintRegistry::validate_all`] before and after
//!   [`ConstraintRegistry::apply_policy`];
//! * parallel — [`ConstraintRegistry::validate_all_parallel`] with two
//!   worker lanes against the advised serial baseline;
//! * serve — a randomized SplitMix64-seeded delta script with periodic
//!   `advise` calls under armed failpoints, diffed against a cold
//!   fault-free re-check of the shadow row-set.
//!
//! Verdict-identical means the `(name, holds, decided)` signature matches
//! exactly; the *method* (bdd vs sql) is exactly what advice is allowed to
//! change.

use relcheck_bdd::failpoint;
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_core::policy::{advise, render_report, WorkloadProfile};
use relcheck_core::registry::ConstraintRegistry;
use relcheck_core::serve::ServeEngine;
use relcheck_core::store::Delta;
use relcheck_core::telemetry::validate_plan_json;
use relcheck_core::{plans_to_json, CheckPlan};
use relcheck_datagen::SplitMix64;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Failpoint-armed tests share the process-global registry; serialize.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct FpGuard;

impl Drop for FpGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

/// Silence the default panic hook while faults are injected on purpose;
/// the panics are caught and folded into degradation, the noise is not.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn restore_panics() {
    let _ = std::panic::take_hook();
}

// ---------------------------------------------------------------- fixtures

const SCHEMAS: [(&str, &[(&str, &str)]); 3] = [
    ("R", &[("x", "k"), ("y", "k")]),
    ("S", &[("x", "k")]),
    ("T", &[("z", "j")]),
];

const K_UNIVERSE: i64 = 7;
const J_UNIVERSE: i64 = 5;

type Shadow = BTreeMap<&'static str, BTreeSet<Vec<i64>>>;

fn base_shadow() -> Shadow {
    let mut shadow = Shadow::new();
    shadow.insert("R", [vec![1, 1], vec![2, 2], vec![3, 3]].into());
    shadow.insert("S", [vec![1], vec![2]].into());
    shadow.insert("T", [vec![0], vec![1]].into());
    shadow
}

/// A second fixture with a deliberately violated constraint, so the
/// differential covers failing verdicts too.
fn violated_shadow() -> Shadow {
    let mut shadow = base_shadow();
    shadow.get_mut("R").unwrap().insert(vec![2, 5]);
    shadow.get_mut("S").unwrap().insert(vec![6]);
    shadow
}

fn db_from(shadow: &Shadow) -> Database {
    let mut db = Database::new();
    for (name, columns) in SCHEMAS {
        let rows = shadow[name]
            .iter()
            .map(|row| row.iter().map(|&v| Raw::Int(v)).collect())
            .collect();
        db.create_relation(name, columns, rows).unwrap();
    }
    for v in 0..K_UNIVERSE {
        db.encode_value("k", &Raw::Int(v));
    }
    for v in 0..J_UNIVERSE {
        db.encode_value("j", &Raw::Int(v));
    }
    db
}

fn constraints() -> Vec<(String, Formula)> {
    [
        ("r-diagonal", "forall x, y. R(x, y) -> x = y"),
        ("r-covers-s", "forall x. S(x) -> exists y. R(x, y)"),
        ("t-bounded", "forall z. T(z) -> z in {0, 1, 2, 3}"),
        ("s-nonempty", "exists x. S(x)"),
    ]
    .iter()
    .map(|(name, text)| ((*name).to_owned(), parse(text).unwrap()))
    .collect()
}

fn registry() -> ConstraintRegistry {
    let mut reg = ConstraintRegistry::new();
    for (name, f) in constraints() {
        reg.register(&name, f);
    }
    reg
}

/// The differential signature: everything advice must not change.
type Signature = Vec<(String, bool, bool)>;

fn signature(reports: &[(String, relcheck_core::checker::CheckReport)]) -> Signature {
    reports
        .iter()
        .map(|(name, r)| (name.clone(), r.holds, r.verdict.is_decided()))
        .collect()
}

/// Run the static configuration and record the workload it produces.
fn static_run(shadow: &Shadow, opts: &CheckerOptions) -> (Signature, WorkloadProfile) {
    let mut ck = Checker::new(db_from(shadow), *opts);
    let mut reg = registry();
    let reports = reg.validate_all(&mut ck).unwrap();
    let profile = WorkloadProfile::record(&ck, &constraints(), &reports);
    (signature(&reports), profile)
}

/// Run a fresh checker with the recorded profile applied before checking.
fn advised_run(shadow: &Shadow, opts: &CheckerOptions, profile: &WorkloadProfile) -> Signature {
    let mut ck = Checker::new(
        db_from(shadow),
        CheckerOptions {
            apply_cache_slots: Some(profile.cache_slots()),
            ..*opts
        },
    );
    let mut reg = registry();
    reg.apply_policy(&mut ck, profile).unwrap();
    signature(&reg.validate_all(&mut ck).unwrap())
}

// ------------------------------------------------------------------ serial

#[test]
fn serial_advised_verdicts_match_static() {
    let option_sets = [
        CheckerOptions::default(),
        CheckerOptions {
            share_subgraphs: true,
            ordering: OrderingStrategy::Adaptive,
            ..Default::default()
        },
    ];
    for shadow in [base_shadow(), violated_shadow()] {
        for opts in &option_sets {
            let (static_sig, profile) = static_run(&shadow, opts);
            let advised_sig = advised_run(&shadow, opts, &profile);
            assert_eq!(
                static_sig, advised_sig,
                "advised registry changed a verdict (opts {opts:?})"
            );
            // Advice is idempotent: applying it again on the same engine
            // must not flip anything either.
            let mut ck = Checker::new(
                db_from(&shadow),
                CheckerOptions {
                    apply_cache_slots: Some(profile.cache_slots()),
                    ..*opts
                },
            );
            let mut reg = registry();
            reg.apply_policy(&mut ck, &profile).unwrap();
            reg.apply_policy(&mut ck, &profile).unwrap();
            assert_eq!(
                static_sig,
                signature(&reg.validate_all(&mut ck).unwrap()),
                "double-applied advice changed a verdict (opts {opts:?})"
            );
        }
    }
}

// ---------------------------------------------------------------- parallel

#[test]
fn parallel_advised_verdicts_match_static() {
    for shadow in [base_shadow(), violated_shadow()] {
        let (static_sig, profile) = static_run(&shadow, &CheckerOptions::default());
        let mut ck = Checker::new(
            db_from(&shadow),
            CheckerOptions {
                apply_cache_slots: Some(profile.cache_slots()),
                ..Default::default()
            },
        );
        let mut reg = registry();
        reg.apply_policy(&mut ck, &profile).unwrap();
        let reports = reg.validate_all_parallel(&mut ck, 2).unwrap();
        assert_eq!(
            static_sig,
            signature(&reports),
            "2-lane advised validation changed a verdict"
        );
    }
}

// ------------------------------------------------------------------- serve

fn random_delta(rng: &mut SplitMix64) -> (&'static str, Vec<i64>) {
    let relation = SCHEMAS[rng.gen_range(0usize..SCHEMAS.len())].0;
    let row = match relation {
        "R" => vec![
            rng.gen_range(0u64..K_UNIVERSE as u64) as i64,
            rng.gen_range(0u64..K_UNIVERSE as u64) as i64,
        ],
        "S" => vec![rng.gen_range(0u64..K_UNIVERSE as u64) as i64],
        _ => vec![rng.gen_range(0u64..J_UNIVERSE as u64) as i64],
    };
    (relation, row)
}

/// Cold, fault-free ground truth over the shadow rows.
fn cold_signature(shadow: &Shadow) -> Vec<(String, bool)> {
    let mut ck = Checker::new(db_from(shadow), CheckerOptions::default());
    ck.check_all(&constraints())
        .unwrap()
        .into_iter()
        .map(|(name, report)| (name, report.holds))
        .collect()
}

#[test]
fn randomized_serve_session_with_advise_under_faults_matches_cold_recheck() {
    let _lock = lock();
    let _fp = FpGuard;
    quiet_panics();
    for seed in [3u64, 88, 20070415] {
        failpoint::clear();
        let mut shadow = base_shadow();
        // Prime fault-free so the session starts from decided verdicts.
        let ck = Checker::new(db_from(&shadow), CheckerOptions::default());
        let (mut engine, _) = ServeEngine::new(ck, &constraints(), None).unwrap();

        // Arm every site at a low rate: advise must stay sound while the
        // engine degrades relations underneath it.
        let spec = failpoint::SITES
            .iter()
            .map(|s| format!("{s}=0.05"))
            .collect::<Vec<_>>()
            .join(",");
        failpoint::configure_spec(&spec, seed).unwrap();

        let mut rng = SplitMix64::seed_from_u64(seed);
        for step in 0..60 {
            let (relation, row) = random_delta(&mut rng);
            let insert = rng.gen_range(0u64..2) == 0;
            let raw: Vec<Raw> = row.iter().map(|&v| Raw::Int(v)).collect();
            let delta = if insert {
                Delta::Insert(raw)
            } else {
                Delta::Delete(raw)
            };
            // An injected fault kills the delta cleanly: atomic
            // maintenance rolls it back and the shadow stays untouched.
            if let Ok(outcome) = engine.apply(relation, &delta) {
                let rows = shadow.get_mut(relation).unwrap();
                let shadow_changed = if insert {
                    rows.insert(row.clone())
                } else {
                    rows.remove(&row)
                };
                assert_eq!(
                    outcome.changed, shadow_changed,
                    "seed {seed} step {step}: engine/shadow disagree on change"
                );
            }
            // Re-advise mid-script while faults are live: a killed advise
            // pass is legitimate, a verdict flip is not (checked below).
            if step % 9 == 4 {
                let _ = engine.advise_now();
            }
            // The differential itself runs fault-free: the faults exercise
            // the delta/advise path, the comparison must be exact.
            failpoint::clear();
            let incremental: Vec<(String, bool)> = engine
                .check_all()
                .unwrap()
                .into_iter()
                .map(|(name, v)| (name, v.holds()))
                .collect();
            assert_eq!(
                incremental,
                cold_signature(&shadow),
                "seed {seed} step {step}: advised session diverged from cold re-check"
            );
            failpoint::configure_spec(&spec, seed ^ step).unwrap();
        }
        // Fault-free advise at the end must always succeed cleanly.
        failpoint::clear();
        engine.advise_now().unwrap();
        let final_verdicts: Vec<(String, bool)> = engine
            .check_all()
            .unwrap()
            .into_iter()
            .map(|(name, v)| (name, v.holds()))
            .collect();
        assert_eq!(
            final_verdicts,
            cold_signature(&shadow),
            "seed {seed}: post-advise verdicts diverged from cold re-check"
        );
    }
    restore_panics();
}

// ----------------------------------------------------------- determinism

#[test]
fn advise_report_and_plan_json_are_deterministic() {
    let shadow = violated_shadow();
    let (_, profile) = static_run(&shadow, &CheckerOptions::default());

    let render = || {
        let mut ck = Checker::new(db_from(&shadow), CheckerOptions::default());
        let advice = advise(&profile, &mut ck, &constraints());
        render_report(&profile, &advice)
    };
    let first = render();
    assert_eq!(first, render(), "advise report is not byte-deterministic");
    assert!(first.contains("route"), "report names a route per relation");

    let plan_json = || {
        let mut ck = Checker::new(db_from(&shadow), CheckerOptions::default());
        let plans: Vec<(String, CheckPlan)> = constraints()
            .iter()
            .map(|(name, f)| (name.clone(), ck.plan(f).unwrap()))
            .collect();
        plans_to_json(&plans)
    };
    let doc = plan_json();
    assert_eq!(doc, plan_json(), "plan JSON is not byte-deterministic");
    validate_plan_json(&doc).expect("plan JSON validates against its schema");
}
