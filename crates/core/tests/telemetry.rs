//! Invariant-driven tests for the telemetry subsystem.
//!
//! Three families:
//!
//! * **Conservation and algebra** — per-op-kind `calls == cache_hits +
//!   cache_misses`, per-kind sums equal the global cache counters,
//!   counters are monotone across checks, and [`StatsDelta`] is exactly
//!   additive: the deltas of two sequential checks sum to the delta of
//!   the combined window.
//! * **Golden rewrite traces** — an FD, an inclusion dependency, and an
//!   equi-join-with-∃ constraint must fire exactly the R1–R4 sequence
//!   checked in below. These pin the §4 pipeline: a refactor that changes
//!   which rules fire (or how often) must update the goldens consciously.
//! * **Schema round-trip** — the metrics JSON of a real run parses,
//!   validates, and preserves the fleet-total = Σ worker invariant.

use relcheck_bdd::{OpKind, StatsDelta};
use relcheck_core::checker::{Checker, CheckerOptions, Method};
use relcheck_core::parallel::ParallelChecker;
use relcheck_core::telemetry::{validate_metrics_json, RewriteRule, RuleFiring, RunMetrics};
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};

fn customer_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "CUST",
        &[
            ("city", "city"),
            ("areacode", "areacode"),
            ("state", "state"),
        ],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
            vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
            vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
            vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
            vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
        ],
    )
    .unwrap();
    db.create_relation(
        "ALLOWED",
        &[("city", "city"), ("areacode", "areacode")],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416)],
            vec![Raw::str("Toronto"), Raw::Int(647)],
            vec![Raw::str("Oshawa"), Raw::Int(905)],
            vec![Raw::str("Newark"), Raw::Int(973)],
        ],
    )
    .unwrap();
    db
}

fn battery() -> Vec<(String, Formula)> {
    [
        (
            "fd-city-state",
            "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2",
        ),
        (
            "inclusion",
            "forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)",
        ),
        (
            "allowed-served",
            "forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)",
        ),
        ("nonempty", "exists c, a, s. CUST(c, a, s)"),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

fn telemetry_checker() -> Checker {
    Checker::new(
        customer_db(),
        CheckerOptions {
            telemetry: true,
            ..Default::default()
        },
    )
}

/// Every window of BDD work must satisfy `calls == hits + misses` per op
/// kind (the counter sits exactly at the cache-lookup site), and the
/// per-kind counters must sum to the global cache totals.
fn assert_conservation(d: &StatsDelta, context: &str) {
    let mut hits = 0;
    let mut misses = 0;
    for kind in OpKind::ALL {
        let s = d.ops[kind.index()];
        assert_eq!(
            s.calls,
            s.cache_hits + s.cache_misses,
            "{context}: {} violates calls == hits + misses",
            kind.name()
        );
        hits += s.cache_hits;
        misses += s.cache_misses;
    }
    assert_eq!(hits, d.cache_hits, "{context}: Σ kind hits == cache_hits");
    assert_eq!(
        misses, d.cache_misses,
        "{context}: Σ kind misses == cache_misses"
    );
}

#[test]
fn per_kind_conservation_holds_in_every_trace() {
    let mut ck = telemetry_checker();
    for (name, f) in battery() {
        let report = ck.check(&f).unwrap();
        let trace = report.metrics.expect("telemetry enabled");
        assert_eq!(
            trace.method, report.method,
            "{name}: trace is self-contained"
        );
        assert_conservation(&trace.bdd, &name);
        assert!(
            trace.bdd.ops[OpKind::Apply.index()].calls > 0,
            "{name}: a BDD check must apply something"
        );
        assert!(
            trace.timings.total >= trace.timings.eval,
            "{name}: timing nesting"
        );
    }
    // The same laws hold on the whole-manager snapshot.
    let stats = ck.logical_db().manager().stats();
    assert_conservation(&stats.delta_since(&Default::default()), "manager snapshot");
    assert!(stats.depth_hwm > 0, "recursion must have descended");
    assert!(stats.peak_nodes > 0);
}

#[test]
fn counters_are_monotone_across_checks() {
    let mut ck = telemetry_checker();
    let mut prev = ck.logical_db().manager().stats();
    for (name, f) in battery() {
        ck.check(&f).unwrap();
        let cur = ck.logical_db().manager().stats();
        assert!(cur.created_nodes >= prev.created_nodes, "{name}");
        assert!(cur.cache_hits >= prev.cache_hits, "{name}");
        assert!(cur.cache_misses >= prev.cache_misses, "{name}");
        assert!(cur.gc_runs >= prev.gc_runs, "{name}");
        assert!(cur.depth_hwm >= prev.depth_hwm, "{name}");
        assert!(cur.peak_nodes >= prev.peak_nodes, "{name}");
        for kind in OpKind::ALL {
            let (c, p) = (cur.ops[kind.index()], prev.ops[kind.index()]);
            assert!(c.calls >= p.calls, "{name}: {}", kind.name());
            assert!(c.cache_hits >= p.cache_hits, "{name}: {}", kind.name());
            assert!(c.cache_misses >= p.cache_misses, "{name}: {}", kind.name());
        }
        prev = cur;
    }
}

#[test]
fn deltas_of_sequential_checks_sum_to_combined_delta() {
    let cs = battery();
    // One checker, windows around each check.
    let mut ck = telemetry_checker();
    let s0 = ck.logical_db().manager().stats();
    ck.check(&cs[0].1).unwrap();
    let s1 = ck.logical_db().manager().stats();
    ck.check(&cs[1].1).unwrap();
    let s2 = ck.logical_db().manager().stats();
    let d_first = s1.delta_since(&s0);
    let d_second = s2.delta_since(&s1);
    let d_combined = s2.delta_since(&s0);
    assert_eq!(
        d_first + d_second,
        d_combined,
        "StatsDelta is exactly additive"
    );
    // The per-check traces are those same windows.
    let mut ck2 = telemetry_checker();
    let t0 = ck2.check(&cs[0].1).unwrap().metrics.unwrap();
    let t1 = ck2.check(&cs[1].1).unwrap().metrics.unwrap();
    assert_eq!(
        t0.bdd + t1.bdd,
        d_combined,
        "traces tile the manager timeline"
    );
}

/// `peak_nodes` is the arena high-water mark, not a live count: it bounds
/// every later arena occupancy from above and never moves when GC or
/// compaction shrinks the arena underneath it. (Regression: it used to
/// track nodes net of the free list, so a sweep could *lower* the
/// reported peak.)
#[test]
fn peak_nodes_is_an_arena_high_water_mark() {
    let mut ck = telemetry_checker();
    for (_, f) in battery() {
        ck.check(&f).unwrap();
        let m = ck.logical_db().manager();
        assert!(
            m.stats().peak_nodes >= m.arena_slots(),
            "peak must dominate current arena occupancy"
        );
    }
    let peak = ck.logical_db().manager().stats().peak_nodes;
    assert!(peak > 0);
    // A sweep frees nodes in place; the peak must not follow them down.
    ck.logical_db_mut().gc();
    assert_eq!(ck.logical_db().manager().stats().peak_nodes, peak);
    // Compaction physically shrinks the arena below the peak; the peak
    // still reports the worst case this workload ever reached.
    let stats = ck.logical_db_mut().compact();
    let m = ck.logical_db().manager();
    assert_eq!(m.arena_slots(), m.live_nodes());
    assert_eq!(
        m.stats().peak_nodes,
        peak,
        "compaction lowered the high-water mark (reclaimed {})",
        stats.reclaimed_slots
    );
    assert!(peak >= m.arena_slots());
    // And the battery still answers afterwards: handles were remapped.
    for (name, f) in battery() {
        assert!(ck.check(&f).is_ok(), "{name}: check failed after compact");
    }
}

fn firings(ck: &mut Checker, src: &str) -> Vec<(RewriteRule, u64)> {
    let f = parse(src).unwrap();
    let report = ck.check(&f).unwrap();
    assert_eq!(report.method, Method::Bdd);
    report
        .metrics
        .unwrap()
        .rules
        .iter()
        .map(|RuleFiring { rule, count }| (*rule, *count))
        .collect()
}

#[test]
fn golden_rewrite_trace_functional_dependency() {
    let mut ck = telemetry_checker();
    let got = firings(
        &mut ck,
        "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2",
    );
    // R3: prenex pull-up leaves a 5-variable prefix. R1: the whole leading
    // ∀ block is eliminated (validity test). No ∀ survives the negation, so
    // R4 stays silent. R2: the first CUST atom claims its own column
    // domains (identity rename — no firing); the second is renamed on its
    // two fresh variables (a2, s2); c re-uses the claimed column.
    let want = vec![
        (RewriteRule::R3PrenexPullup, 5),
        (RewriteRule::R1LeadingBlock, 5),
        (RewriteRule::R2JoinRename, 2),
    ];
    assert_eq!(got, want, "FD golden trace");
}

#[test]
fn golden_rewrite_trace_inclusion_dependency() {
    let mut ck = telemetry_checker();
    let got = firings(&mut ck, "forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)");
    // CUST is the larger relation, so its atom claims the column domains;
    // the ALLOWED atom is renamed on both positions (c, a).
    let want = vec![
        (RewriteRule::R3PrenexPullup, 3),
        (RewriteRule::R1LeadingBlock, 3),
        (RewriteRule::R2JoinRename, 2),
    ];
    assert_eq!(got, want, "inclusion-dependency golden trace");
}

#[test]
fn golden_rewrite_trace_equijoin_with_existential() {
    let mut ck = telemetry_checker();
    let got = firings(
        &mut ck,
        "forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)",
    );
    // Prefix ∀c ∀a ∃s (R3 × 3); only the ∀ block is stripped (R1 × 2).
    // Negating the remainder turns ∃s into ∀s over a conjunction, which
    // Rule 5 distributes (R4 × 1). CUST (larger) claims its columns, so
    // the ALLOWED atom renames both of its positions (R2 × 2).
    let want = vec![
        (RewriteRule::R3PrenexPullup, 3),
        (RewriteRule::R1LeadingBlock, 2),
        (RewriteRule::R4ForallPushdown, 1),
        (RewriteRule::R2JoinRename, 2),
    ];
    assert_eq!(got, want, "equi-join golden trace");
}

#[test]
fn disabled_telemetry_attaches_no_trace() {
    let mut ck = Checker::new(customer_db(), CheckerOptions::default());
    for (name, f) in battery() {
        let report = ck.check(&f).unwrap();
        assert!(report.metrics.is_none(), "{name}: no trace when disabled");
    }
}

#[test]
fn fleet_totals_equal_worker_sums_and_json_validates() {
    let opts = CheckerOptions {
        telemetry: true,
        ..Default::default()
    };
    for threads in [1usize, 2, 8] {
        let pc = ParallelChecker::new(customer_db(), opts, threads);
        let (reports, fleet) = pc.check_all_telemetry(&battery()).unwrap();
        // Fleet totals are exactly the per-worker sum.
        let mut sum = StatsDelta::default();
        for w in &fleet.workers {
            sum += w.bdd;
            assert_conservation(&w.bdd, &format!("threads={threads} worker={}", w.worker));
        }
        assert_eq!(sum, fleet.total, "threads={threads}");
        // Every constraint index appears in exactly one lane, ascending.
        let mut covered: Vec<usize> = fleet
            .workers
            .iter()
            .flat_map(|w| w.constraints.iter().copied())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..reports.len()).collect::<Vec<_>>());
        // The emitted JSON survives its own validator (which re-checks the
        // conservation laws and the fleet-total invariant from the text).
        let doc = RunMetrics::from_reports(&reports, Some(fleet), threads).to_json();
        validate_metrics_json(&doc).unwrap_or_else(|e| panic!("threads={threads}: {e}"));
    }
}

#[test]
fn metrics_json_reflects_report_content() {
    let mut ck = telemetry_checker();
    let reports = ck.check_all(&battery()).unwrap();
    let doc = RunMetrics::from_reports(&reports, None, 1).to_json();
    validate_metrics_json(&doc).unwrap();
    let parsed = relcheck_core::telemetry::parse_json(&doc).unwrap();
    let cs = parsed.get("constraints").unwrap().as_arr().unwrap();
    assert_eq!(cs.len(), reports.len());
    for (c, (name, report)) in cs.iter().zip(&reports) {
        assert_eq!(c.get("name").unwrap().as_str(), Some(name.as_str()));
        let method = c.get("method").unwrap().as_str().unwrap();
        let want = match report.method {
            Method::Bdd => "bdd",
            Method::SqlFallback => "sql_fallback",
            Method::BruteForce => "brute_force",
            Method::Aborted => "aborted",
        };
        assert_eq!(method, want, "{name}");
        let rules = c
            .get("trace")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(
            rules.len(),
            report.metrics.as_ref().unwrap().rules.len(),
            "{name}: rule firings round-trip"
        );
    }
}

#[test]
fn node_limit_fallback_is_reported_in_the_trace() {
    let mut ck = Checker::new(
        customer_db(),
        CheckerOptions {
            node_limit: Some(18),
            telemetry: true,
            ..Default::default()
        },
    );
    let f = parse(r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#).unwrap();
    let report = ck.check(&f).unwrap();
    assert_eq!(report.method, Method::SqlFallback);
    let trace = report.metrics.unwrap();
    // The ladder records both BDD attempts (the GC-and-retry also busted
    // the budget) before the SQL rung decided the check.
    assert_eq!(trace.ladder, vec!["bdd", "gc_retry", "sql"]);
    match trace.fallback {
        Some(relcheck_core::telemetry::FallbackReason::RetryExhausted { limit, live }) => {
            assert_eq!(limit, 18);
            assert!(live >= limit, "the abort fired at or past the budget");
        }
        other => panic!("expected a retry-exhausted fallback reason, got {other:?}"),
    }
}
