//! Property tests for the relational engine: algebra laws against
//! brute-force set semantics, CSV round trips, and statistics identities.
// Gated behind the off-by-default `fuzz` feature: proptest is an external
// dependency and the tier-1 verify must build with no network access. Run
// with `cargo test --features fuzz` in an environment with a vendored
// proptest.
#![cfg(feature = "fuzz")]

use proptest::prelude::*;
use relcheck_relstore::csv::parse_csv;
use relcheck_relstore::{algebra, stats, Raw, Relation, Schema};
use std::collections::HashSet;

fn schema2() -> Schema {
    Schema::new(&[("a", "k"), ("b", "k")])
}

fn rel2(rows: &[(u32, u32)]) -> Relation {
    Relation::from_rows(schema2(), rows.iter().map(|&(a, b)| vec![a, b])).unwrap()
}

fn arb_rows() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..8, 0u32..8), 0..30)
}

proptest! {
    #[test]
    fn join_matches_nested_loops(l in arb_rows(), r in arb_rows()) {
        let lr = rel2(&l);
        let rr = rel2(&r);
        let joined = algebra::equi_join(&lr, &rr, &[(1, 0)]).unwrap();
        let mut expected: HashSet<Vec<u32>> = HashSet::new();
        let lset: HashSet<(u32, u32)> = l.iter().copied().collect();
        let rset: HashSet<(u32, u32)> = r.iter().copied().collect();
        for &(a, b) in &lset {
            for &(c, d) in &rset {
                if b == c {
                    expected.insert(vec![a, b, c, d]);
                }
            }
        }
        let got: HashSet<Vec<u32>> = joined.rows().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn semi_plus_anti_partition_left(l in arb_rows(), r in arb_rows()) {
        let lr = rel2(&l);
        let rr = rel2(&r);
        let semi = algebra::semi_join(&lr, &rr, &[(0, 0)]).unwrap();
        let anti = algebra::anti_join(&lr, &rr, &[(0, 0)]).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), lr.len());
        let semi_set: HashSet<Vec<u32>> = semi.rows().collect();
        let anti_set: HashSet<Vec<u32>> = anti.rows().collect();
        prop_assert!(semi_set.is_disjoint(&anti_set));
    }

    #[test]
    fn union_difference_laws(a in arb_rows(), b in arb_rows()) {
        let ra = rel2(&a);
        let rb = rel2(&b);
        let u = algebra::union(&ra, &rb).unwrap();
        let d = algebra::difference(&ra, &rb).unwrap();
        let aset: HashSet<(u32, u32)> = a.iter().copied().collect();
        let bset: HashSet<(u32, u32)> = b.iter().copied().collect();
        prop_assert_eq!(u.len(), aset.union(&bset).count());
        prop_assert_eq!(d.len(), aset.difference(&bset).count());
        // A = (A − B) ∪ (A ⋉ B on all columns)
        let back = algebra::union(
            &d,
            &algebra::semi_join(&ra, &rb, &[(0, 0), (1, 1)]).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(back.len(), ra.len());
    }

    #[test]
    fn fd_violations_consistent_with_group_counts(rows in arb_rows()) {
        let r = rel2(&rows);
        let viol = algebra::fd_violations(&r, &[0], &[1]).unwrap();
        // A key is bad iff it maps to ≥ 2 distinct b values.
        let mut by_key: std::collections::HashMap<u32, HashSet<u32>> = Default::default();
        for &(a, b) in rows.iter().collect::<HashSet<_>>() {
            by_key.entry(a).or_default().insert(b);
        }
        let expected: usize = by_key
            .values()
            .filter(|s| s.len() > 1)
            .map(HashSet::len)
            .sum();
        prop_assert_eq!(viol.len(), expected);
        prop_assert_eq!(algebra::fd_holds(&r, &[0], &[1]).unwrap(), expected == 0);
    }

    #[test]
    fn entropy_chain_rule(rows in arb_rows()) {
        prop_assume!(!rows.is_empty());
        let r = rel2(&rows);
        let h_joint = stats::entropy(&r, &[0, 1]);
        let h_a = stats::entropy(&r, &[0]);
        let h_b_given_a = stats::cond_entropy(&r, &[0], 1);
        prop_assert!((h_joint - (h_a + h_b_given_a)).abs() < 1e-9);
        // Entropy bounds.
        prop_assert!(h_joint <= (r.len() as f64).log2() + 1e-9);
        prop_assert!(h_a >= -1e-12);
    }

    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(
        (proptest::string::string_regex("[a-zA-Z ,\"\n0-9]{0,12}").unwrap(), any::<i32>()),
        0..20,
    )) {
        // Serialize rows to CSV (quoting everything) and parse back.
        let mut text = String::new();
        for (s, i) in &rows {
            let quoted = format!("\"{}\"", s.replace('"', "\"\""));
            text.push_str(&format!("{quoted},{i}\n"));
        }
        let parsed = parse_csv(&text).unwrap();
        prop_assert_eq!(parsed.len(), rows.len());
        for ((s, i), row) in rows.iter().zip(&parsed) {
            prop_assert_eq!(&row[0], &Raw::Str(s.clone()));
            prop_assert_eq!(&row[1], &Raw::Int(*i as i64));
        }
    }

    #[test]
    fn insert_delete_round_trip(rows in arb_rows(), extra in (0u32..8, 0u32..8)) {
        let mut r = rel2(&rows);
        let row = vec![extra.0, extra.1];
        let was_there = r.contains(&row);
        let before = r.len();
        r.insert(&row).unwrap();
        prop_assert!(r.contains(&row));
        r.delete(&row).unwrap();
        prop_assert!(!r.contains(&row));
        prop_assert_eq!(r.len(), before - usize::from(was_there));
    }
}
