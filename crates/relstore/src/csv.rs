//! Minimal CSV ingestion — loading real tables into the catalog.
//!
//! Supports the common CSV dialect: comma separator, `"`-quoted fields
//! with `""` escapes, optional header row, `\n`/`\r\n` line endings.
//! Fields that parse as `i64` become [`Raw::Int`], everything else
//! [`Raw::Str`] — matching how the paper's phone/zip attributes are
//! naturally numeric while cities and states are strings. Use
//! [`parse_csv`] for the raw rows or
//! [`crate::Database::create_relation_from_csv`] to load and
//! dictionary-encode in one step.

use crate::catalog::Database;
use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::value::Raw;

/// A parse failure, with 1-based line number and (when known) the 1-based
/// column of the offending character on that line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// Line where the problem was found. For arity errors this is the line
    /// the row *starts* on — robust to quoted fields spanning newlines and
    /// to skipped blank lines.
    pub line: usize,
    /// Column of the offending character, when a single character is to
    /// blame (stray quote, invalid byte). `None` for whole-row problems.
    pub column: Option<usize>,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.column {
            Some(col) => write!(
                f,
                "CSV error at line {}, column {col}: {}",
                self.line, self.message
            ),
            None => write!(f, "CSV error at line {}: {}", self.line, self.message),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parse CSV bytes into raw rows, rejecting invalid UTF-8 with the line
/// and column of the first bad byte instead of panicking or lossily
/// substituting. Use this for data read straight off disk or a socket.
pub fn parse_csv_bytes(bytes: &[u8]) -> std::result::Result<Vec<Vec<Raw>>, CsvError> {
    match std::str::from_utf8(bytes) {
        Ok(text) => parse_csv(text),
        Err(e) => {
            let prefix = &bytes[..e.valid_up_to()];
            let line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
            let line_start = prefix
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |i| i + 1);
            Err(CsvError {
                line,
                column: Some(prefix.len() - line_start + 1),
                message: format!(
                    "invalid UTF-8 (byte 0x{:02X} at offset {})",
                    bytes[e.valid_up_to()],
                    e.valid_up_to()
                ),
            })
        }
    }
}

/// Parse CSV text into raw rows. Empty lines are skipped. All rows must
/// have the same arity.
pub fn parse_csv(text: &str) -> std::result::Result<Vec<Vec<Raw>>, CsvError> {
    let mut rows: Vec<Vec<Raw>> = Vec::new();
    // The physical line each parsed row starts on, parallel to `rows` —
    // arity diagnostics must survive blank lines and quoted newlines.
    let mut row_lines: Vec<usize> = Vec::new();
    let mut field = String::new();
    let mut row: Vec<Raw> = Vec::new();
    let mut in_quotes = false;
    let mut field_was_quoted = false;
    let mut line = 1usize;
    let mut col = 0usize;
    let mut row_start = 1usize;
    let mut quote_open = (1usize, 1usize);
    let mut chars = text.chars().peekable();
    let mut any_field = false;

    fn finish_field(field: &mut String, row: &mut Vec<Raw>, quoted: bool) {
        let raw = if !quoted {
            match field.trim().parse::<i64>() {
                Ok(i) => Raw::Int(i),
                Err(_) => Raw::Str(field.clone()),
            }
        } else {
            Raw::Str(field.clone())
        };
        row.push(raw);
        field.clear();
    }

    while let Some(c) = chars.next() {
        col += 1;
        if !any_field && field.is_empty() && row.is_empty() && !matches!(c, '\n' | '\r') {
            row_start = line;
        }
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    col += 1;
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() && !field_was_quoted => {
                // Opening quote at the start of a field.
                in_quotes = true;
                field_was_quoted = true;
                any_field = true;
                quote_open = (line, col);
            }
            '"' => {
                return Err(CsvError {
                    line,
                    column: Some(col),
                    message: "quote inside an unquoted field".to_owned(),
                })
            }
            ',' if !in_quotes => {
                finish_field(&mut field, &mut row, field_was_quoted);
                field_was_quoted = false;
                any_field = true;
            }
            '\r' if !in_quotes => {} // swallow; \n follows
            '\n' if !in_quotes => {
                if any_field || !field.is_empty() {
                    finish_field(&mut field, &mut row, field_was_quoted);
                    rows.push(std::mem::take(&mut row));
                    row_lines.push(row_start);
                }
                field_was_quoted = false;
                any_field = false;
                line += 1;
                col = 0;
            }
            c => {
                if c == '\n' {
                    line += 1;
                    col = 0;
                }
                field.push(c);
                any_field = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line: quote_open.0,
            column: Some(quote_open.1),
            message: "unterminated quoted field".to_owned(),
        });
    }
    if any_field || !field.is_empty() {
        finish_field(&mut field, &mut row, field_was_quoted);
        rows.push(row);
        row_lines.push(row_start);
    }
    if let Some(first) = rows.first() {
        let arity = first.len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != arity {
                return Err(CsvError {
                    line: row_lines[i],
                    column: None,
                    message: format!("expected {arity} fields, found {}", r.len()),
                });
            }
        }
    }
    Ok(rows)
}

impl Database {
    /// Load a CSV document as a new relation. `columns` declares
    /// `(name, class)` pairs as in [`Database::create_relation`]; when
    /// `has_header` is set the first row is skipped (after arity
    /// validation).
    pub fn create_relation_from_csv(
        &mut self,
        name: &str,
        columns: &[(&str, &str)],
        csv_text: &str,
        has_header: bool,
    ) -> Result<&Relation> {
        let rows = parse_csv(csv_text).map_err(|e| csv_store_error(name, e))?;
        self.create_relation_from_rows(name, columns, rows, has_header)
    }

    /// Like [`Database::create_relation_from_csv`] but starting from raw
    /// bytes, so invalid UTF-8 read straight off disk surfaces as a typed
    /// [`StoreError::Csv`] with line/column diagnostics instead of needing
    /// a lossy or panicking conversion first.
    pub fn create_relation_from_csv_bytes(
        &mut self,
        name: &str,
        columns: &[(&str, &str)],
        csv_bytes: &[u8],
        has_header: bool,
    ) -> Result<&Relation> {
        let rows = parse_csv_bytes(csv_bytes).map_err(|e| csv_store_error(name, e))?;
        self.create_relation_from_rows(name, columns, rows, has_header)
    }

    fn create_relation_from_rows(
        &mut self,
        name: &str,
        columns: &[(&str, &str)],
        mut rows: Vec<Vec<Raw>>,
        has_header: bool,
    ) -> Result<&Relation> {
        if has_header && !rows.is_empty() {
            rows.remove(0);
        }
        for r in &rows {
            if r.len() != columns.len() {
                return Err(StoreError::ArityMismatch {
                    expected: columns.len(),
                    got: r.len(),
                });
            }
        }
        self.create_relation(name, columns, rows)
    }
}

/// Lift a parser-level [`CsvError`] into the catalog's typed error,
/// preserving the position diagnostics.
fn csv_store_error(relation: &str, e: CsvError) -> StoreError {
    StoreError::Csv {
        relation: relation.to_owned(),
        line: e.line,
        column: e.column,
        message: e.message,
    }
}

/// Render a relation back to CSV (decoded through the database's
/// dictionaries, with a header row of column names). Strings are quoted
/// whenever they contain a delimiter, quote, or newline — and always when
/// they would otherwise parse as an integer, so a load→export→load cycle
/// preserves types.
pub fn to_csv(db: &Database, rel: &Relation) -> String {
    fn field(raw: &Raw) -> String {
        match raw {
            Raw::Int(i) => i.to_string(),
            Raw::Str(s) => {
                let needs_quotes = s.contains([',', '"', '\n', '\r'])
                    || s.trim().parse::<i64>().is_ok()
                    || s.trim() != s.as_str();
                if needs_quotes {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
        }
    }
    let mut out = String::new();
    let names: Vec<&str> = rel
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..rel.len() {
        let decoded = db.decode_row(rel, &rel.row(i));
        let cells: Vec<String> = decoded.iter().map(field).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rows() {
        let rows = parse_csv("Toronto,416,ON\nOshawa,905,ON\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")]
        );
    }

    #[test]
    fn no_trailing_newline() {
        let rows = parse_csv("a,1\nb,2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec![Raw::str("b"), Raw::Int(2)]);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let rows = parse_csv("\"New York, NY\",1\n\"say \"\"hi\"\"\",2\n").unwrap();
        assert_eq!(rows[0][0], Raw::str("New York, NY"));
        assert_eq!(rows[1][0], Raw::str("say \"hi\""));
    }

    #[test]
    fn quoted_numbers_stay_strings() {
        let rows = parse_csv("\"416\",416\n").unwrap();
        assert_eq!(rows[0][0], Raw::str("416"));
        assert_eq!(rows[0][1], Raw::Int(416));
    }

    #[test]
    fn crlf_and_blank_lines() {
        let rows = parse_csv("a,1\r\n\r\nb,2\r\n").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn newline_inside_quotes_is_data() {
        let rows = parse_csv("\"two\nlines\",1\n").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Raw::str("two\nlines"));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_csv("a,b\nc\n").unwrap_err();
        assert!(err.message.contains("expected 2 fields"));
        assert_eq!(err.line, 2);
        assert_eq!(err.column, None);
    }

    #[test]
    fn arity_error_reports_physical_start_line() {
        // Row 2 starts on physical line 4: a blank line and a quoted
        // newline both shift physical lines past the row index.
        let err = parse_csv("\"a\nb\",1\n\nc\n").unwrap_err();
        assert!(err.message.contains("expected 2 fields, found 1"));
        assert_eq!(err.line, 4, "line of the short row, not its row index");
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = parse_csv("\"oops,1\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!((err.line, err.column), (1, Some(1)), "where it opened");
    }

    #[test]
    fn stray_quote_reports_line_and_column() {
        let err = parse_csv("a,1\nbad\"field,2\n").unwrap_err();
        assert!(err.message.contains("quote inside an unquoted field"));
        assert_eq!((err.line, err.column), (2, Some(4)));
    }

    #[test]
    fn reopened_quote_after_closing_rejected_with_position() {
        // `"x" "` — a second quote once the quoted field already closed.
        let err = parse_csv("\"x\" \"y,1\n").unwrap_err();
        assert!(err.message.contains("quote inside an unquoted field"));
        assert_eq!((err.line, err.column), (1, Some(5)));
    }

    #[test]
    fn invalid_utf8_rejected_with_position() {
        let err = parse_csv_bytes(b"a,1\nb,\xFF2\n").unwrap_err();
        assert!(err.message.contains("invalid UTF-8"));
        assert_eq!((err.line, err.column), (2, Some(3)));
        // And a clean byte stream parses identically to the str path.
        assert_eq!(
            parse_csv_bytes(b"a,1\nb,2\n").unwrap(),
            parse_csv("a,1\nb,2\n").unwrap()
        );
    }

    #[test]
    fn database_loads_csv_with_header() {
        let mut db = Database::new();
        let rel = db
            .create_relation_from_csv(
                "phones",
                &[("city", "city"), ("areacode", "areacode")],
                "city,areacode\nToronto,416\nOshawa,905\n",
                true,
            )
            .unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            db.class_size("city"),
            2,
            "header skipped before dictionary encoding"
        );
    }

    #[test]
    fn export_round_trips_through_loader() {
        let mut db = Database::new();
        db.create_relation_from_csv(
            "r",
            &[("city", "city"), ("code", "code"), ("note", "note")],
            "\"New York, NY\",212,\"said \"\"hi\"\"\"\nToronto,416,\"416\"\n",
            false,
        )
        .unwrap();
        let rel = db.relation("r").unwrap().clone();
        let text = to_csv(&db, &rel);
        // Reload under fresh names; contents must survive exactly.
        let mut db2 = Database::new();
        db2.create_relation_from_csv(
            "r2",
            &[("city", "city"), ("code", "code"), ("note", "note")],
            &text,
            true, // the export added a header
        )
        .unwrap();
        let rel2 = db2.relation("r2").unwrap();
        assert_eq!(rel2.len(), rel.len());
        let decode_all = |db: &Database, rel: &Relation| -> Vec<Vec<Raw>> {
            let mut rows: Vec<Vec<Raw>> = (0..rel.len())
                .map(|i| db.decode_row(rel, &rel.row(i)))
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(decode_all(&db, &rel), decode_all(&db2, rel2));
        // The quoted "416" stayed a string, the bare 416 stayed an int.
        let flat: Vec<Vec<Raw>> = decode_all(&db, &rel);
        assert!(flat
            .iter()
            .any(|r| r[1] == Raw::Int(416) && r[2] == Raw::str("416")));
    }

    #[test]
    fn database_csv_errors_are_typed_with_position() {
        let mut db = Database::new();
        let err = db
            .create_relation_from_csv("phones", &[("c", "c")], "ok\nbad\"q\n", false)
            .unwrap_err();
        match err {
            StoreError::Csv {
                relation,
                line,
                column,
                message,
            } => {
                assert_eq!(relation, "phones");
                assert_eq!((line, column), (2, Some(4)));
                assert!(message.contains("quote inside an unquoted field"));
            }
            other => panic!("expected StoreError::Csv, got {other:?}"),
        }
    }

    #[test]
    fn database_loads_csv_bytes_and_rejects_bad_utf8() {
        let mut db = Database::new();
        let rel = db
            .create_relation_from_csv_bytes(
                "phones",
                &[("city", "city"), ("areacode", "areacode")],
                b"city,areacode\nToronto,416\n",
                true,
            )
            .unwrap();
        assert_eq!(rel.len(), 1);
        let err = db
            .create_relation_from_csv_bytes("bad", &[("c", "c")], b"a\n\xFF\n", false)
            .unwrap_err();
        match err {
            StoreError::Csv {
                relation,
                line,
                column,
                message,
            } => {
                assert_eq!(relation, "bad");
                assert_eq!((line, column), (2, Some(1)));
                assert!(message.contains("invalid UTF-8"));
            }
            other => panic!("expected StoreError::Csv, got {other:?}"),
        }
    }

    #[test]
    fn database_rejects_wrong_arity_csv() {
        let mut db = Database::new();
        let err =
            db.create_relation_from_csv("phones", &[("city", "city")], "Toronto,416\n", false);
        assert!(matches!(err, Err(StoreError::ArityMismatch { .. })));
    }
}
