//! Relational algebra operators over [`Relation`]s.
//!
//! These hash-based operators are what the paper's "SQL approach" compiles
//! to: selections, projections, equi-joins, anti-joins (`NOT EXISTS`),
//! unions/differences/products, and the group-by style functional-dependency
//! check used for `areacode → state` (Figure 5(b)).

use crate::error::{Result, StoreError};
use crate::relation::Relation;
use std::collections::{HashMap, HashSet};

/// σ: rows whose column `col` equals `code`.
pub fn select_eq(rel: &Relation, col: usize, code: u32) -> Result<Relation> {
    check_col(rel, col)?;
    let rows = rel.rows().filter(|r| r[col] == code);
    Relation::from_rows(rel.schema().clone(), rows)
}

/// σ: rows whose column `col` is in `codes`.
pub fn select_in(rel: &Relation, col: usize, codes: &HashSet<u32>) -> Result<Relation> {
    check_col(rel, col)?;
    let rows = rel.rows().filter(|r| codes.contains(&r[col]));
    Relation::from_rows(rel.schema().clone(), rows)
}

/// π: project onto the listed columns, deduplicating.
pub fn project(rel: &Relation, cols: &[usize]) -> Result<Relation> {
    for &c in cols {
        check_col(rel, c)?;
    }
    let schema = rel.schema().project(cols);
    let rows = rel
        .rows()
        .map(|r| cols.iter().map(|&c| r[c]).collect::<Vec<u32>>());
    Relation::from_rows(schema, rows)
}

/// ⋈: hash equi-join on the given `(left_col, right_col)` pairs. The output
/// schema is the concatenation of both inputs. The smaller side is used as
/// the build side.
pub fn equi_join(left: &Relation, right: &Relation, pairs: &[(usize, usize)]) -> Result<Relation> {
    for &(l, r) in pairs {
        check_col(left, l)?;
        check_col(right, r)?;
        let (lc, rc) = (left.schema().class_of(l), right.schema().class_of(r));
        if lc != rc {
            return Err(StoreError::ClassMismatch {
                left: lc.to_owned(),
                right: rc.to_owned(),
            });
        }
    }
    let schema = left.schema().concat(right.schema());
    // Build on the smaller input to bound the hash table.
    let (build, probe, build_is_left) = if left.len() <= right.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let build_key = |row: &[u32]| -> Vec<u32> {
        pairs
            .iter()
            .map(|&(l, r)| row[if build_is_left { l } else { r }])
            .collect()
    };
    let probe_key = |row: &[u32]| -> Vec<u32> {
        pairs
            .iter()
            .map(|&(l, r)| row[if build_is_left { r } else { l }])
            .collect()
    };
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for i in 0..build.len() {
        table.entry(build_key(&build.row(i))).or_default().push(i);
    }
    let mut out_rows = Vec::new();
    for j in 0..probe.len() {
        let prow = probe.row(j);
        if let Some(matches) = table.get(&probe_key(&prow)) {
            for &i in matches {
                let brow = build.row(i);
                let (lrow, rrow) = if build_is_left {
                    (&brow, &prow)
                } else {
                    (&prow, &brow)
                };
                let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                row.extend_from_slice(lrow);
                row.extend_from_slice(rrow);
                out_rows.push(row);
            }
        }
    }
    Relation::from_rows(schema, out_rows)
}

/// ⋉: rows of `left` that have at least one join partner in `right`.
pub fn semi_join(left: &Relation, right: &Relation, pairs: &[(usize, usize)]) -> Result<Relation> {
    join_filter(left, right, pairs, true)
}

/// ▷: rows of `left` with **no** join partner in `right` — the `NOT EXISTS`
/// of the paper's violation queries.
pub fn anti_join(left: &Relation, right: &Relation, pairs: &[(usize, usize)]) -> Result<Relation> {
    join_filter(left, right, pairs, false)
}

fn join_filter(
    left: &Relation,
    right: &Relation,
    pairs: &[(usize, usize)],
    keep_matching: bool,
) -> Result<Relation> {
    for &(l, r) in pairs {
        check_col(left, l)?;
        check_col(right, r)?;
        let (lc, rc) = (left.schema().class_of(l), right.schema().class_of(r));
        if lc != rc {
            return Err(StoreError::ClassMismatch {
                left: lc.to_owned(),
                right: rc.to_owned(),
            });
        }
    }
    let mut keys: HashSet<Vec<u32>> = HashSet::new();
    for i in 0..right.len() {
        let row = right.row(i);
        keys.insert(pairs.iter().map(|&(_, r)| row[r]).collect());
    }
    let rows = left.rows().filter(|row| {
        let key: Vec<u32> = pairs.iter().map(|&(l, _)| row[l]).collect();
        keys.contains(&key) == keep_matching
    });
    Relation::from_rows(left.schema().clone(), rows)
}

/// ∪: set union (schemas must have equal arity; the left schema wins).
pub fn union(left: &Relation, right: &Relation) -> Result<Relation> {
    if left.arity() != right.arity() {
        return Err(StoreError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    Relation::from_rows(left.schema().clone(), left.rows().chain(right.rows()))
}

/// −: set difference.
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation> {
    if left.arity() != right.arity() {
        return Err(StoreError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    let rset: HashSet<Vec<u32>> = right.rows().collect();
    Relation::from_rows(
        left.schema().clone(),
        left.rows().filter(|r| !rset.contains(r)),
    )
}

/// ×: Cartesian product.
pub fn product(left: &Relation, right: &Relation) -> Result<Relation> {
    let schema = left.schema().concat(right.schema());
    let mut rows = Vec::with_capacity(left.len() * right.len());
    for i in 0..left.len() {
        let lrow = left.row(i);
        for j in 0..right.len() {
            let mut row = lrow.clone();
            row.extend(right.row(j));
            rows.push(row);
        }
    }
    Relation::from_rows(schema, rows)
}

/// Group-by count over the listed columns: distinct keys with multiplicity.
pub fn group_count(rel: &Relation, cols: &[usize]) -> Result<HashMap<Vec<u32>, usize>> {
    for &c in cols {
        check_col(rel, c)?;
    }
    let mut groups: HashMap<Vec<u32>, usize> = HashMap::new();
    for row in rel.rows() {
        let key: Vec<u32> = cols.iter().map(|&c| row[c]).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    Ok(groups)
}

/// The rows violating the functional dependency `lhs → rhs`: every row whose
/// `lhs` group maps to more than one distinct `rhs` value. This is the SQL
/// group-by/having formulation the paper benchmarks in Figure 5(b).
pub fn fd_violations(rel: &Relation, lhs: &[usize], rhs: &[usize]) -> Result<Relation> {
    for &c in lhs.iter().chain(rhs) {
        check_col(rel, c)?;
    }
    let mut seen: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    let mut bad_keys: HashSet<Vec<u32>> = HashSet::new();
    for row in rel.rows() {
        let key: Vec<u32> = lhs.iter().map(|&c| row[c]).collect();
        let val: Vec<u32> = rhs.iter().map(|&c| row[c]).collect();
        match seen.get(&key) {
            None => {
                seen.insert(key, val);
            }
            Some(prev) if *prev != val => {
                bad_keys.insert(key);
            }
            Some(_) => {}
        }
    }
    let rows = rel.rows().filter(|row| {
        let key: Vec<u32> = lhs.iter().map(|&c| row[c]).collect();
        bad_keys.contains(&key)
    });
    Relation::from_rows(rel.schema().clone(), rows)
}

/// Does the functional dependency `lhs → rhs` hold?
pub fn fd_holds(rel: &Relation, lhs: &[usize], rhs: &[usize]) -> Result<bool> {
    Ok(fd_violations(rel, lhs, rhs)?.is_empty())
}

fn check_col(rel: &Relation, col: usize) -> Result<()> {
    if col >= rel.arity() {
        Err(StoreError::ColumnOutOfRange {
            index: col,
            arity: rel.arity(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Schema;

    fn rel(rows: Vec<Vec<u32>>) -> Relation {
        Relation::from_rows(Schema::new(&[("a", "k"), ("b", "k")]), rows).unwrap()
    }

    #[test]
    fn select_eq_filters() {
        let r = rel(vec![vec![1, 2], vec![1, 3], vec![2, 2]]);
        let s = select_eq(&r, 0, 1).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.rows().all(|row| row[0] == 1));
    }

    #[test]
    fn select_in_filters() {
        let r = rel(vec![vec![1, 2], vec![5, 3], vec![9, 2]]);
        let codes: HashSet<u32> = [1, 9].into_iter().collect();
        let s = select_in(&r, 0, &codes).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn project_dedupes() {
        let r = rel(vec![vec![1, 2], vec![1, 3], vec![2, 2]]);
        let p = project(&r, &[0]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.arity(), 1);
    }

    #[test]
    fn equi_join_matches_nested_loops() {
        let l = rel(vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let r = rel(vec![vec![1, 100], vec![1, 101], vec![3, 300], vec![4, 400]]);
        let j = equi_join(&l, &r, &[(0, 0)]).unwrap();
        let mut got: Vec<Vec<u32>> = j.rows().collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                vec![1, 10, 1, 100],
                vec![1, 10, 1, 101],
                vec![3, 30, 3, 300],
            ]
        );
        assert_eq!(j.arity(), 4);
    }

    #[test]
    fn join_rejects_class_mismatch() {
        let l = rel(vec![vec![1, 2]]);
        let r = Relation::from_rows(Schema::new(&[("x", "other")]), vec![vec![1]]).unwrap();
        assert!(matches!(
            equi_join(&l, &r, &[(0, 0)]),
            Err(StoreError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn semi_and_anti_join_partition() {
        let l = rel(vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let r = rel(vec![vec![1, 0], vec![3, 0]]);
        let semi = semi_join(&l, &r, &[(0, 0)]).unwrap();
        let anti = anti_join(&l, &r, &[(0, 0)]).unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti.row(0), vec![2, 20]);
        assert_eq!(semi.len() + anti.len(), l.len());
    }

    #[test]
    fn union_difference() {
        let a = rel(vec![vec![1, 1], vec![2, 2]]);
        let b = rel(vec![vec![2, 2], vec![3, 3]]);
        assert_eq!(union(&a, &b).unwrap().len(), 3);
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0), vec![1, 1]);
    }

    #[test]
    fn product_multiplies() {
        let a = rel(vec![vec![1, 1], vec![2, 2]]);
        let b = rel(vec![vec![5, 5], vec![6, 6], vec![7, 7]]);
        let p = product(&a, &b).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.arity(), 4);
    }

    #[test]
    fn group_count_counts() {
        let r = rel(vec![vec![1, 2], vec![1, 3], vec![2, 2]]);
        let g = group_count(&r, &[0]).unwrap();
        assert_eq!(g[&vec![1]], 2);
        assert_eq!(g[&vec![2]], 1);
    }

    #[test]
    fn fd_check_finds_violations() {
        // a → b violated by key 1 (maps to 2 and 3).
        let r = rel(vec![vec![1, 2], vec![1, 3], vec![2, 2]]);
        assert!(!fd_holds(&r, &[0], &[1]).unwrap());
        let v = fd_violations(&r, &[0], &[1]).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.rows().all(|row| row[0] == 1));
        // b → a holds? b=2 maps to a∈{1,2} → violated too.
        assert!(!fd_holds(&r, &[1], &[0]).unwrap());
        // FD on a clean relation holds.
        let clean = rel(vec![vec![1, 2], vec![2, 2], vec![3, 4]]);
        assert!(fd_holds(&clean, &[0], &[1]).unwrap());
    }

    #[test]
    fn column_bounds_checked() {
        let r = rel(vec![vec![1, 2]]);
        assert!(matches!(
            select_eq(&r, 5, 0),
            Err(StoreError::ColumnOutOfRange { index: 5, arity: 2 })
        ));
        assert!(project(&r, &[0, 9]).is_err());
    }
}
