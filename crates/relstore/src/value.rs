//! Raw values and per-class dictionaries.
//!
//! Every attribute belongs to an *attribute class* (e.g. `city`,
//! `areacode`, `student_id`); all columns of a class share one [`Dict`], so
//! a value has the same dense code wherever it appears. The paper's BDD
//! encoding (Section 2.2) assumes exactly this: finite domains
//! `{1..|dom|}` shared between the columns a first-order variable ranges
//! over.

use std::collections::HashMap;
use std::fmt;

/// A raw attribute value before dictionary encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Raw {
    /// Integer-valued attributes (area codes, numbers, zip codes, ids).
    Int(i64),
    /// String-valued attributes (cities, states, departments).
    Str(String),
}

impl Raw {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Raw {
        Raw::Str(s.into())
    }
}

impl fmt::Display for Raw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Raw::Int(i) => write!(f, "{i}"),
            Raw::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Raw {
    fn from(v: i64) -> Raw {
        Raw::Int(v)
    }
}

impl From<&str> for Raw {
    fn from(v: &str) -> Raw {
        Raw::Str(v.to_owned())
    }
}

impl From<String> for Raw {
    fn from(v: String) -> Raw {
        Raw::Str(v)
    }
}

/// A dense dictionary: raw value ↔ `u32` code. Codes are allocated in first-
/// seen order and never reused, so the dictionary size is the attribute
/// class's active-domain size.
#[derive(Debug, Clone, Default)]
pub struct Dict {
    values: Vec<Raw>,
    lookup: HashMap<Raw, u32>,
}

impl Dict {
    /// Empty dictionary.
    pub fn new() -> Dict {
        Dict::default()
    }

    /// Intern a value, returning its code (allocating one if new).
    pub fn encode(&mut self, v: &Raw) -> u32 {
        if let Some(&c) = self.lookup.get(v) {
            return c;
        }
        let c = self.values.len() as u32;
        self.values.push(v.clone());
        self.lookup.insert(v.clone(), c);
        c
    }

    /// Code of an already-interned value, if any.
    pub fn code(&self, v: &Raw) -> Option<u32> {
        self.lookup.get(v).copied()
    }

    /// The raw value behind a code.
    ///
    /// # Panics
    /// Panics if `code` was never allocated.
    pub fn decode(&self, code: u32) -> &Raw {
        &self.values[code as usize]
    }

    /// Number of interned values (the class's active-domain size).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dict::new();
        let a = d.encode(&Raw::str("Toronto"));
        let b = d.encode(&Raw::str("Oshawa"));
        let a2 = d.encode(&Raw::str("Toronto"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dict::new();
        let vals = [Raw::Int(416), Raw::str("NJ"), Raw::Int(-3)];
        let codes: Vec<u32> = vals.iter().map(|v| d.encode(v)).collect();
        for (v, &c) in vals.iter().zip(&codes) {
            assert_eq!(d.decode(c), v);
            assert_eq!(d.code(v), Some(c));
        }
        assert_eq!(d.code(&Raw::Int(999)), None);
    }

    #[test]
    fn ints_and_strings_are_distinct_values() {
        let mut d = Dict::new();
        let a = d.encode(&Raw::Int(416));
        let b = d.encode(&Raw::str("416"));
        assert_ne!(a, b);
    }
}
