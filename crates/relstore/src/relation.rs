//! Dictionary-encoded columnar relations with set semantics.
//!
//! A [`Relation`] stores `u32` dictionary codes column-by-column. Rows are
//! deduplicated at construction (a relation is a *set* of tuples, matching
//! the BDD characteristic-function semantics). Mutation (`insert`/`delete`)
//! lazily builds a row index so the paper's incremental-maintenance
//! experiments (Figure 4(b)) run against both representations.

use crate::error::{Result, StoreError};
use std::collections::HashSet;

/// A column declaration: name plus the attribute class whose dictionary the
/// column's values are encoded with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within the schema.
    pub name: String,
    /// Attribute class (dictionary) name.
    pub class: String,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    cols: Vec<Column>,
}

impl Schema {
    /// Build a schema from `(name, class)` pairs.
    pub fn new(cols: &[(&str, &str)]) -> Schema {
        Schema {
            cols: cols
                .iter()
                .map(|&(n, c)| Column {
                    name: n.to_owned(),
                    class: c.to_owned(),
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    /// Class of column `i`.
    pub fn class_of(&self, i: usize) -> &str {
        &self.cols[i].class
    }

    /// A schema with the listed columns only (projection).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            cols: indices.iter().map(|&i| self.cols[i].clone()).collect(),
        }
    }

    /// Concatenation of two schemas (join/product output). Name clashes are
    /// disambiguated with a `.r` suffix on the right side.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        for c in &other.cols {
            let name = if self.index_of(&c.name).is_some() {
                format!("{}.r", c.name)
            } else {
                c.name.clone()
            };
            cols.push(Column {
                name,
                class: c.class.clone(),
            });
        }
        Schema { cols }
    }
}

/// A set of tuples over a [`Schema`], stored columnar as dictionary codes.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    schema: Schema,
    cols: Vec<Vec<u32>>,
    len: usize,
    /// Lazily built row index for membership/mutation.
    index: Option<HashSet<Vec<u32>>>,
}

impl Relation {
    /// An empty relation over the schema.
    pub fn new(schema: Schema) -> Relation {
        let arity = schema.arity();
        Relation {
            schema,
            cols: vec![Vec::new(); arity],
            len: 0,
            index: None,
        }
    }

    /// Build from coded rows, deduplicating (set semantics).
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Vec<u32>>) -> Result<Relation> {
        let mut rel = Relation::new(schema);
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        for row in rows {
            if row.len() != rel.schema.arity() {
                return Err(StoreError::ArityMismatch {
                    expected: rel.schema.arity(),
                    got: row.len(),
                });
            }
            if seen.insert(row.clone()) {
                rel.push_unchecked(&row);
            }
        }
        Ok(rel)
    }

    fn push_unchecked(&mut self, row: &[u32]) {
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.len += 1;
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The codes of column `i`.
    pub fn col(&self, i: usize) -> &[u32] {
        &self.cols[i]
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Iterate over all rows (materializing each).
    pub fn rows(&self) -> impl Iterator<Item = Vec<u32>> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Distinct codes appearing in column `i` (the column's own active
    /// domain, which can be smaller than its class dictionary).
    pub fn distinct(&self, i: usize) -> usize {
        let set: HashSet<u32> = self.cols[i].iter().copied().collect();
        set.len()
    }

    fn ensure_index(&mut self) {
        if self.index.is_none() {
            self.index = Some(self.rows().collect());
        }
    }

    /// Membership test (builds the row index on first use).
    pub fn contains(&mut self, row: &[u32]) -> bool {
        self.ensure_index();
        self.index.as_ref().unwrap().contains(row)
    }

    /// Insert a tuple; returns false if it was already present.
    pub fn insert(&mut self, row: &[u32]) -> Result<bool> {
        if row.len() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.ensure_index();
        if !self.index.as_mut().unwrap().insert(row.to_vec()) {
            return Ok(false);
        }
        self.push_unchecked(row);
        Ok(true)
    }

    /// Delete a tuple; returns false if it was absent. O(n) on hit (the
    /// columnar store swap-removes the row).
    pub fn delete(&mut self, row: &[u32]) -> Result<bool> {
        if row.len() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.ensure_index();
        if !self.index.as_mut().unwrap().remove(row) {
            return Ok(false);
        }
        let pos = (0..self.len)
            .find(|&i| self.cols.iter().zip(row).all(|(c, &v)| c[i] == v))
            .expect("index said the row exists");
        for c in &mut self.cols {
            c.swap_remove(pos);
        }
        self.len -= 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::new(&[("a", "ca"), ("b", "cb")])
    }

    #[test]
    fn schema_lookup() {
        let s = schema2();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.class_of(0), "ca");
    }

    #[test]
    fn schema_project_and_concat() {
        let s = schema2();
        let p = s.project(&[1]);
        assert_eq!(p.columns()[0].name, "b");
        let c = s.concat(&schema2());
        assert_eq!(c.arity(), 4);
        assert_eq!(c.columns()[2].name, "a.r", "clashing names disambiguated");
    }

    #[test]
    fn from_rows_dedupes() {
        let r = Relation::from_rows(schema2(), vec![vec![1, 2], vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.col(0), &[1, 3]);
    }

    #[test]
    fn from_rows_rejects_bad_arity() {
        assert!(matches!(
            Relation::from_rows(schema2(), vec![vec![1]]),
            Err(StoreError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn insert_and_delete() {
        let mut r = Relation::new(schema2());
        assert!(r.insert(&[1, 2]).unwrap());
        assert!(!r.insert(&[1, 2]).unwrap());
        assert!(r.insert(&[5, 6]).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[1, 2]));
        assert!(r.delete(&[1, 2]).unwrap());
        assert!(!r.delete(&[1, 2]).unwrap());
        assert!(!r.contains(&[1, 2]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), vec![5, 6]);
    }

    #[test]
    fn distinct_counts_column_values() {
        let r = Relation::from_rows(schema2(), vec![vec![1, 9], vec![2, 9], vec![1, 8]]).unwrap();
        assert_eq!(r.distinct(0), 2);
        assert_eq!(r.distinct(1), 2);
    }

    #[test]
    fn rows_iterates_in_storage_order() {
        let r = Relation::from_rows(schema2(), vec![vec![1, 2], vec![3, 4]]).unwrap();
        let rows: Vec<Vec<u32>> = r.rows().collect();
        assert_eq!(rows, vec![vec![1, 2], vec![3, 4]]);
    }
}
