//! Logical query plans and their executor — the "SQL approach".
//!
//! The paper's baseline expresses each constraint as a SQL query whose
//! result set is the violating tuples (Section 1's `SELECT … WHERE NOT
//! EXISTS …` example). We model that with a small composable plan language
//! executed by [`execute`]; the `relcheck-core` checker compiles first-order
//! constraints into these plans when it falls back from BDD evaluation.

use crate::algebra;
use crate::catalog::Database;
use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::value::Raw;
use std::collections::HashSet;

/// A logical plan node. Leaf scans name relations in a [`Database`];
/// selections carry raw values that are resolved against the class
/// dictionaries at execution time (an un-interned value simply selects
/// nothing).
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan a named base relation.
    Scan(String),
    /// σ column = value.
    SelectEq {
        /// Input plan.
        input: Box<Plan>,
        /// Column index in the input.
        col: usize,
        /// Raw comparison value.
        value: Raw,
    },
    /// σ column ∈ values.
    SelectIn {
        /// Input plan.
        input: Box<Plan>,
        /// Column index in the input.
        col: usize,
        /// Raw membership set.
        values: Vec<Raw>,
    },
    /// σ column ≠ value.
    SelectNeq {
        /// Input plan.
        input: Box<Plan>,
        /// Column index in the input.
        col: usize,
        /// Raw comparison value.
        value: Raw,
    },
    /// σ column ∉ values.
    SelectNotIn {
        /// Input plan.
        input: Box<Plan>,
        /// Column index in the input.
        col: usize,
        /// Raw exclusion set.
        values: Vec<Raw>,
    },
    /// σ column-a = column-b (within one input).
    SelectColEq {
        /// Input plan.
        input: Box<Plan>,
        /// First column.
        left: usize,
        /// Second column.
        right: usize,
    },
    /// σ column-a ≠ column-b (within one input).
    SelectColNeq {
        /// Input plan.
        input: Box<Plan>,
        /// First column.
        left: usize,
        /// Second column.
        right: usize,
    },
    /// π onto the listed columns.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Columns to keep, in output order.
        cols: Vec<usize>,
    },
    /// Hash equi-join on `(left_col, right_col)` pairs.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join-column pairs.
        pairs: Vec<(usize, usize)>,
    },
    /// `NOT EXISTS`: rows of `left` with no partner in `right`.
    AntiJoin {
        /// Left input (kept side).
        left: Box<Plan>,
        /// Right input (filter side).
        right: Box<Plan>,
        /// Join-column pairs.
        pairs: Vec<(usize, usize)>,
    },
    /// Set union.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Set difference.
    Diff {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Cartesian product.
    Product {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Rows violating the functional dependency `lhs → rhs` in the input.
    FdViolations {
        /// Input plan.
        input: Box<Plan>,
        /// Determinant columns.
        lhs: Vec<usize>,
        /// Dependent columns.
        rhs: Vec<usize>,
    },
}

impl Plan {
    /// Leaf scan.
    pub fn scan(name: &str) -> Plan {
        Plan::Scan(name.to_owned())
    }

    /// Chain a σ column = value.
    pub fn select_eq(self, col: usize, value: Raw) -> Plan {
        Plan::SelectEq {
            input: Box::new(self),
            col,
            value,
        }
    }

    /// Chain a σ column ∈ values.
    pub fn select_in(self, col: usize, values: Vec<Raw>) -> Plan {
        Plan::SelectIn {
            input: Box::new(self),
            col,
            values,
        }
    }

    /// Chain a projection.
    pub fn project(self, cols: Vec<usize>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            cols,
        }
    }

    /// Join with another plan.
    pub fn join(self, right: Plan, pairs: Vec<(usize, usize)>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            pairs,
        }
    }

    /// Anti-join with another plan.
    pub fn anti_join(self, right: Plan, pairs: Vec<(usize, usize)>) -> Plan {
        Plan::AntiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pairs,
        }
    }
}

/// Execute a plan against a database, materializing every operator's output
/// (the paper's baseline is a straightforward iterator-free executor; all
/// comparisons here are BDD-vs-SQL on equal footing, both in memory).
pub fn execute(db: &Database, plan: &Plan) -> Result<Relation> {
    match plan {
        Plan::Scan(name) => Ok(db.relation(name)?.clone()),
        Plan::SelectEq { input, col, value } => {
            let rel = execute(db, input)?;
            if *col >= rel.arity() {
                return Err(StoreError::ColumnOutOfRange {
                    index: *col,
                    arity: rel.arity(),
                });
            }
            let class = rel.schema().class_of(*col).to_owned();
            match db.code(&class, value) {
                Some(code) => algebra::select_eq(&rel, *col, code),
                None => Ok(Relation::new(rel.schema().clone())),
            }
        }
        Plan::SelectIn { input, col, values } => {
            let rel = execute(db, input)?;
            if *col >= rel.arity() {
                return Err(StoreError::ColumnOutOfRange {
                    index: *col,
                    arity: rel.arity(),
                });
            }
            let class = rel.schema().class_of(*col).to_owned();
            let codes: HashSet<u32> = values.iter().filter_map(|v| db.code(&class, v)).collect();
            algebra::select_in(&rel, *col, &codes)
        }
        Plan::SelectNeq { input, col, value } => {
            let rel = execute(db, input)?;
            if *col >= rel.arity() {
                return Err(StoreError::ColumnOutOfRange {
                    index: *col,
                    arity: rel.arity(),
                });
            }
            let class = rel.schema().class_of(*col).to_owned();
            match db.code(&class, value) {
                Some(code) => Relation::from_rows(
                    rel.schema().clone(),
                    rel.rows().filter(|r| r[*col] != code),
                ),
                // Value never interned: nothing can equal it.
                None => Ok(rel),
            }
        }
        Plan::SelectNotIn { input, col, values } => {
            let rel = execute(db, input)?;
            if *col >= rel.arity() {
                return Err(StoreError::ColumnOutOfRange {
                    index: *col,
                    arity: rel.arity(),
                });
            }
            let class = rel.schema().class_of(*col).to_owned();
            let codes: HashSet<u32> = values.iter().filter_map(|v| db.code(&class, v)).collect();
            Relation::from_rows(
                rel.schema().clone(),
                rel.rows().filter(|r| !codes.contains(&r[*col])),
            )
        }
        Plan::SelectColEq { input, left, right } => {
            let rel = execute(db, input)?;
            for &c in [left, right] {
                if c >= rel.arity() {
                    return Err(StoreError::ColumnOutOfRange {
                        index: c,
                        arity: rel.arity(),
                    });
                }
            }
            Relation::from_rows(
                rel.schema().clone(),
                rel.rows().filter(|r| r[*left] == r[*right]),
            )
        }
        Plan::SelectColNeq { input, left, right } => {
            let rel = execute(db, input)?;
            for &c in [left, right] {
                if c >= rel.arity() {
                    return Err(StoreError::ColumnOutOfRange {
                        index: c,
                        arity: rel.arity(),
                    });
                }
            }
            Relation::from_rows(
                rel.schema().clone(),
                rel.rows().filter(|r| r[*left] != r[*right]),
            )
        }
        Plan::Project { input, cols } => {
            let rel = execute(db, input)?;
            algebra::project(&rel, cols)
        }
        Plan::Join { left, right, pairs } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            algebra::equi_join(&l, &r, pairs)
        }
        Plan::AntiJoin { left, right, pairs } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            algebra::anti_join(&l, &r, pairs)
        }
        Plan::Union { left, right } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            algebra::union(&l, &r)
        }
        Plan::Diff { left, right } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            algebra::difference(&l, &r)
        }
        Plan::Product { left, right } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            algebra::product(&l, &r)
        }
        Plan::FdViolations { input, lhs, rhs } => {
            let rel = execute(db, input)?;
            algebra::fd_violations(&rel, lhs, rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "customers",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(212), Raw::str("ON")], // violation
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NY")], // FD violation
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_and_select() {
        let db = phone_db();
        let plan = Plan::scan("customers").select_eq(0, Raw::str("Toronto"));
        let out = execute(&db, &plan).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn select_unknown_value_yields_empty() {
        let db = phone_db();
        let plan = Plan::scan("customers").select_eq(0, Raw::str("Nowhere"));
        assert!(execute(&db, &plan).unwrap().is_empty());
    }

    #[test]
    fn membership_constraint_as_plan() {
        // Violations of: city='Toronto' ⇒ areacode ∈ {416, 647}.
        let db = phone_db();
        let toronto = Plan::scan("customers").select_eq(0, Raw::str("Toronto"));
        let ok = toronto
            .clone()
            .select_in(1, vec![Raw::Int(416), Raw::Int(647)]);
        let violations = Plan::Diff {
            left: Box::new(toronto),
            right: Box::new(ok),
        };
        let out = execute(&db, &violations).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(db.decode_row(&out, &out.row(0))[1], Raw::Int(212));
    }

    #[test]
    fn anti_join_not_exists() {
        let mut db = phone_db();
        db.create_relation(
            "allowed",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Newark"), Raw::Int(973)],
            ],
        )
        .unwrap();
        let plan = Plan::scan("customers").anti_join(Plan::scan("allowed"), vec![(0, 0), (1, 1)]);
        let out = execute(&db, &plan).unwrap();
        assert_eq!(out.len(), 1); // only the 212 row
    }

    #[test]
    fn fd_violation_plan() {
        let db = phone_db();
        let plan = Plan::FdViolations {
            input: Box::new(Plan::scan("customers")),
            lhs: vec![1],
            rhs: vec![2],
        };
        let out = execute(&db, &plan).unwrap();
        // areacode → state broken by 973 → {NJ, NY}: two rows.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn select_col_eq() {
        let mut db = Database::new();
        db.create_relation(
            "pairs",
            &[("x", "k"), ("y", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(1), Raw::Int(2)],
                vec![Raw::Int(3), Raw::Int(3)],
            ],
        )
        .unwrap();
        let plan = Plan::SelectColEq {
            input: Box::new(Plan::scan("pairs")),
            left: 0,
            right: 1,
        };
        assert_eq!(execute(&db, &plan).unwrap().len(), 2);
    }

    #[test]
    fn negated_selections() {
        let db = phone_db();
        let neq = Plan::SelectNeq {
            input: Box::new(Plan::scan("customers")),
            col: 0,
            value: Raw::str("Toronto"),
        };
        assert_eq!(execute(&db, &neq).unwrap().len(), 2);
        // Unknown value: nothing equals it, everything survives.
        let neq_unknown = Plan::SelectNeq {
            input: Box::new(Plan::scan("customers")),
            col: 0,
            value: Raw::str("Nowhere"),
        };
        assert_eq!(execute(&db, &neq_unknown).unwrap().len(), 5);
        let notin = Plan::SelectNotIn {
            input: Box::new(Plan::scan("customers")),
            col: 1,
            values: vec![Raw::Int(416), Raw::Int(647)],
        };
        assert_eq!(execute(&db, &notin).unwrap().len(), 3);
    }

    #[test]
    fn select_col_neq() {
        let mut db = Database::new();
        db.create_relation(
            "pairs",
            &[("x", "k"), ("y", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(1), Raw::Int(2)],
            ],
        )
        .unwrap();
        let plan = Plan::SelectColNeq {
            input: Box::new(Plan::scan("pairs")),
            left: 0,
            right: 1,
        };
        let out = execute(&db, &plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), vec![0, 1]); // codes of (1, 2)
    }

    #[test]
    fn unknown_relation_propagates() {
        let db = Database::new();
        assert!(matches!(
            execute(&db, &Plan::scan("ghost")),
            Err(StoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn union_and_product_plans() {
        let db = phone_db();
        let toronto = Plan::scan("customers").select_eq(0, Raw::str("Toronto"));
        let newark = Plan::scan("customers").select_eq(0, Raw::str("Newark"));
        let u = Plan::Union {
            left: Box::new(toronto.clone()),
            right: Box::new(newark),
        };
        assert_eq!(execute(&db, &u).unwrap().len(), 5);
        // Idempotent union.
        let uu = Plan::Union {
            left: Box::new(toronto.clone()),
            right: Box::new(toronto.clone()),
        };
        assert_eq!(execute(&db, &uu).unwrap().len(), 3);
        let p = Plan::Product {
            left: Box::new(toronto.clone().project(vec![1])),
            right: Box::new(Plan::scan("customers").project(vec![0])),
        };
        // 3 Toronto area codes × 2 distinct cities.
        assert_eq!(execute(&db, &p).unwrap().len(), 6);
    }

    #[test]
    fn join_project_pipeline() {
        let mut db = phone_db();
        db.create_relation(
            "state_names",
            &[("state", "state"), ("full", "statename")],
            vec![
                vec![Raw::str("ON"), Raw::str("Ontario")],
                vec![Raw::str("NJ"), Raw::str("New Jersey")],
            ],
        )
        .unwrap();
        let plan = Plan::scan("customers")
            .join(Plan::scan("state_names"), vec![(2, 0)])
            .project(vec![0, 4]);
        let out = execute(&db, &plan).unwrap();
        // Toronto→Ontario, Newark→New Jersey (NY row has no partner).
        assert_eq!(out.len(), 2);
    }
}
