//! The database catalog: named relations plus per-class dictionaries.

use crate::error::{Result, StoreError};
use crate::relation::{Relation, Schema};
use crate::value::{Dict, Raw};
use std::collections::HashMap;

/// A collection of named [`Relation`]s sharing attribute-class
/// dictionaries. All raw values enter through [`Database::create_relation`]
/// (or [`Database::encode_value`]), which keeps codes consistent across
/// every column of a class.
///
/// `Clone` is cheap relative to index construction (columnar `Vec`s and
/// dictionaries) and is what lets the parallel checker hand each worker its
/// own copy of the data without sharing mutable state.
#[derive(Debug, Clone, Default)]
pub struct Database {
    dicts: HashMap<String, Dict>,
    relations: HashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a relation from raw rows. Columns are `(name, class)` pairs;
    /// raw values are interned into the class dictionaries.
    pub fn create_relation(
        &mut self,
        name: &str,
        columns: &[(&str, &str)],
        rows: Vec<Vec<Raw>>,
    ) -> Result<&Relation> {
        if self.relations.contains_key(name) {
            return Err(StoreError::DuplicateRelation(name.to_owned()));
        }
        let schema = Schema::new(columns);
        let mut coded = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != schema.arity() {
                return Err(StoreError::ArityMismatch {
                    expected: schema.arity(),
                    got: row.len(),
                });
            }
            let mut crow = Vec::with_capacity(row.len());
            for (i, v) in row.iter().enumerate() {
                let dict = self.dicts.entry(schema.class_of(i).to_owned()).or_default();
                crow.push(dict.encode(v));
            }
            coded.push(crow);
        }
        let rel = Relation::from_rows(schema, coded)?;
        Ok(self.relations.entry(name.to_owned()).or_insert(rel))
    }

    /// Register an already-encoded relation. The caller is responsible for
    /// having encoded its codes through this database's dictionaries (e.g.
    /// synthetic generators that mint integer codes directly should also
    /// pre-size the dictionaries via [`Database::ensure_class_size`]).
    pub fn insert_relation(&mut self, name: &str, rel: Relation) -> Result<()> {
        if self.relations.contains_key(name) {
            return Err(StoreError::DuplicateRelation(name.to_owned()));
        }
        self.relations.insert(name.to_owned(), rel);
        Ok(())
    }

    /// Replace or insert a relation unconditionally.
    pub fn put_relation(&mut self, name: &str, rel: Relation) {
        self.relations.insert(name.to_owned(), rel);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StoreError::UnknownRelation(name.to_owned()))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StoreError::UnknownRelation(name.to_owned()))
    }

    /// Names of all relations (unordered).
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// The dictionary for an attribute class, if it exists.
    pub fn dict(&self, class: &str) -> Option<&Dict> {
        self.dicts.get(class)
    }

    /// Intern a raw value into a class dictionary.
    pub fn encode_value(&mut self, class: &str, v: &Raw) -> u32 {
        self.dicts.entry(class.to_owned()).or_default().encode(v)
    }

    /// Code of a raw value if already interned.
    pub fn code(&self, class: &str, v: &Raw) -> Option<u32> {
        self.dicts.get(class).and_then(|d| d.code(v))
    }

    /// Active-domain size of a class (0 if the class is unknown). This is
    /// the `|dom|` that sizes the BDD finite-domain block for the class.
    pub fn class_size(&self, class: &str) -> u64 {
        self.dicts.get(class).map_or(0, |d| d.len() as u64)
    }

    /// Make sure a class dictionary has at least `size` codes by interning
    /// the integers `0..size` that are not yet present. Synthetic generators
    /// that mint dense integer codes use this to keep `code == value`.
    pub fn ensure_class_size(&mut self, class: &str, size: u64) {
        let dict = self.dicts.entry(class.to_owned()).or_default();
        for v in 0..size as i64 {
            dict.encode(&Raw::Int(v));
        }
    }

    /// Decode one row of a relation back to raw values (for reporting
    /// violating tuples).
    pub fn decode_row(&self, rel: &Relation, row: &[u32]) -> Vec<Raw> {
        row.iter()
            .enumerate()
            .map(|(i, &c)| self.dicts[rel.schema().class_of(i)].decode(c).clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_relation_interns_values() {
        let mut db = Database::new();
        db.create_relation(
            "r",
            &[("city", "city"), ("state", "state")],
            vec![
                vec![Raw::str("Toronto"), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::str("ON")],
            ],
        )
        .unwrap();
        assert_eq!(db.class_size("city"), 2);
        assert_eq!(db.class_size("state"), 1);
        assert_eq!(db.relation("r").unwrap().len(), 2);
    }

    #[test]
    fn classes_are_shared_across_relations() {
        let mut db = Database::new();
        db.create_relation("r1", &[("c", "city")], vec![vec![Raw::str("Toronto")]])
            .unwrap();
        db.create_relation(
            "r2",
            &[("home", "city")],
            vec![vec![Raw::str("Toronto")], vec![Raw::str("Ottawa")]],
        )
        .unwrap();
        // Same raw value gets the same code in both relations.
        let c1 = db.relation("r1").unwrap().col(0)[0];
        let codes2 = db.relation("r2").unwrap().col(0).to_vec();
        assert!(codes2.contains(&c1));
        assert_eq!(db.class_size("city"), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation("r", &[("a", "ca")], vec![]).unwrap();
        assert!(matches!(
            db.create_relation("r", &[("a", "ca")], vec![]),
            Err(StoreError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn unknown_relation_error() {
        let db = Database::new();
        assert!(matches!(
            db.relation("nope"),
            Err(StoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn ensure_class_size_mints_dense_codes() {
        let mut db = Database::new();
        db.ensure_class_size("k", 5);
        assert_eq!(db.class_size("k"), 5);
        assert_eq!(db.code("k", &Raw::Int(3)), Some(3));
    }

    #[test]
    fn decode_row_round_trips() {
        let mut db = Database::new();
        db.create_relation(
            "r",
            &[("city", "city"), ("ac", "areacode")],
            vec![vec![Raw::str("Toronto"), Raw::Int(416)]],
        )
        .unwrap();
        let rel = db.relation("r").unwrap();
        let row = rel.row(0);
        let rel_clone = rel.clone();
        assert_eq!(
            db.decode_row(&rel_clone, &row),
            vec![Raw::str("Toronto"), Raw::Int(416)]
        );
    }
}
