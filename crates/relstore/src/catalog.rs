//! The database catalog: named relations plus per-class dictionaries.

use crate::error::{Result, StoreError};
use crate::relation::{Relation, Schema};
use crate::value::{Dict, Raw};
use std::collections::HashMap;

/// A collection of named [`Relation`]s sharing attribute-class
/// dictionaries. All raw values enter through [`Database::create_relation`]
/// (or [`Database::encode_value`]), which keeps codes consistent across
/// every column of a class.
///
/// `Clone` is cheap relative to index construction (columnar `Vec`s and
/// dictionaries) and is what lets the parallel checker hand each worker its
/// own copy of the data without sharing mutable state.
#[derive(Debug, Clone, Default)]
pub struct Database {
    dicts: HashMap<String, Dict>,
    relations: HashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a relation from raw rows. Columns are `(name, class)` pairs;
    /// raw values are interned into the class dictionaries.
    pub fn create_relation(
        &mut self,
        name: &str,
        columns: &[(&str, &str)],
        rows: Vec<Vec<Raw>>,
    ) -> Result<&Relation> {
        if self.relations.contains_key(name) {
            return Err(StoreError::DuplicateRelation(name.to_owned()));
        }
        let schema = Schema::new(columns);
        let mut coded = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != schema.arity() {
                return Err(StoreError::ArityMismatch {
                    expected: schema.arity(),
                    got: row.len(),
                });
            }
            let mut crow = Vec::with_capacity(row.len());
            for (i, v) in row.iter().enumerate() {
                let dict = self.dicts.entry(schema.class_of(i).to_owned()).or_default();
                crow.push(dict.encode(v));
            }
            coded.push(crow);
        }
        let rel = Relation::from_rows(schema, coded)?;
        Ok(self.relations.entry(name.to_owned()).or_insert(rel))
    }

    /// Register an already-encoded relation. The caller is responsible for
    /// having encoded its codes through this database's dictionaries (e.g.
    /// synthetic generators that mint integer codes directly should also
    /// pre-size the dictionaries via [`Database::ensure_class_size`]).
    pub fn insert_relation(&mut self, name: &str, rel: Relation) -> Result<()> {
        if self.relations.contains_key(name) {
            return Err(StoreError::DuplicateRelation(name.to_owned()));
        }
        self.relations.insert(name.to_owned(), rel);
        Ok(())
    }

    /// Replace or insert a relation unconditionally.
    pub fn put_relation(&mut self, name: &str, rel: Relation) {
        self.relations.insert(name.to_owned(), rel);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StoreError::UnknownRelation(name.to_owned()))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StoreError::UnknownRelation(name.to_owned()))
    }

    /// Names of all relations (unordered).
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// The dictionary for an attribute class, if it exists.
    pub fn dict(&self, class: &str) -> Option<&Dict> {
        self.dicts.get(class)
    }

    /// Intern a raw value into a class dictionary.
    pub fn encode_value(&mut self, class: &str, v: &Raw) -> u32 {
        self.dicts.entry(class.to_owned()).or_default().encode(v)
    }

    /// Code of a raw value if already interned.
    pub fn code(&self, class: &str, v: &Raw) -> Option<u32> {
        self.dicts.get(class).and_then(|d| d.code(v))
    }

    /// Active-domain size of a class (0 if the class is unknown). This is
    /// the `|dom|` that sizes the BDD finite-domain block for the class.
    pub fn class_size(&self, class: &str) -> u64 {
        self.dicts.get(class).map_or(0, |d| d.len() as u64)
    }

    /// Make sure a class dictionary has at least `size` codes by interning
    /// the integers `0..size` that are not yet present. Synthetic generators
    /// that mint dense integer codes use this to keep `code == value`.
    pub fn ensure_class_size(&mut self, class: &str, size: u64) {
        let dict = self.dicts.entry(class.to_owned()).or_default();
        for v in 0..size as i64 {
            dict.encode(&Raw::Int(v));
        }
    }

    /// A 64-bit fingerprint of everything a relation's logical index
    /// depends on: arity, column names and classes, the *current size* of
    /// each referenced class dictionary (which fixes the BDD block widths),
    /// row count, and the full columnar code matrix. Order-dependent and
    /// deterministic, so the same spec loading the same CSV bytes always
    /// fingerprints identically — and a changed CSV (or a changed sibling
    /// that grew a shared class dictionary) changes the fingerprint. The
    /// persistent index store records this next to each cached segment to
    /// detect stale caches.
    pub fn relation_fingerprint(&self, name: &str) -> Result<u64> {
        fn mix(state: u64, v: u64) -> u64 {
            // SplitMix64 finalizer over a running combine: cheap, good
            // avalanche, and std-only.
            let mut z = state
                .rotate_left(7)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(v);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn mix_str(state: u64, s: &str) -> u64 {
            let mut h = mix(state, s.len() as u64);
            for chunk in s.as_bytes().chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(buf));
            }
            h
        }
        fn mix_raw(state: u64, v: &Raw) -> u64 {
            match v {
                Raw::Int(i) => mix(mix(state, 1), *i as u64),
                Raw::Str(s) => mix_str(mix(state, 2), s),
            }
        }
        let rel = self.relation(name)?;
        let schema = rel.schema();
        let mut h = mix_str(0x5EED_1DE0_F1D0_0001, name);
        h = mix(h, schema.arity() as u64);
        for col in schema.columns() {
            h = mix_str(h, &col.name);
            h = mix_str(h, &col.class);
            let size = self.class_size(&col.class);
            h = mix(h, size);
            // The raw↔code mapping, in code order: a renamed value that
            // happens to land on the same code must still change the print.
            if let Some(dict) = self.dict(&col.class) {
                for code in 0..size as u32 {
                    h = mix_raw(h, dict.decode(code));
                }
            }
        }
        h = mix(h, rel.len() as u64);
        for i in 0..schema.arity() {
            for &code in rel.col(i) {
                h = mix(h, code as u64);
            }
        }
        Ok(h)
    }

    /// Decode one row of a relation back to raw values (for reporting
    /// violating tuples).
    pub fn decode_row(&self, rel: &Relation, row: &[u32]) -> Vec<Raw> {
        row.iter()
            .enumerate()
            .map(|(i, &c)| self.dicts[rel.schema().class_of(i)].decode(c).clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_relation_interns_values() {
        let mut db = Database::new();
        db.create_relation(
            "r",
            &[("city", "city"), ("state", "state")],
            vec![
                vec![Raw::str("Toronto"), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::str("ON")],
            ],
        )
        .unwrap();
        assert_eq!(db.class_size("city"), 2);
        assert_eq!(db.class_size("state"), 1);
        assert_eq!(db.relation("r").unwrap().len(), 2);
    }

    #[test]
    fn classes_are_shared_across_relations() {
        let mut db = Database::new();
        db.create_relation("r1", &[("c", "city")], vec![vec![Raw::str("Toronto")]])
            .unwrap();
        db.create_relation(
            "r2",
            &[("home", "city")],
            vec![vec![Raw::str("Toronto")], vec![Raw::str("Ottawa")]],
        )
        .unwrap();
        // Same raw value gets the same code in both relations.
        let c1 = db.relation("r1").unwrap().col(0)[0];
        let codes2 = db.relation("r2").unwrap().col(0).to_vec();
        assert!(codes2.contains(&c1));
        assert_eq!(db.class_size("city"), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation("r", &[("a", "ca")], vec![]).unwrap();
        assert!(matches!(
            db.create_relation("r", &[("a", "ca")], vec![]),
            Err(StoreError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn unknown_relation_error() {
        let db = Database::new();
        assert!(matches!(
            db.relation("nope"),
            Err(StoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn ensure_class_size_mints_dense_codes() {
        let mut db = Database::new();
        db.ensure_class_size("k", 5);
        assert_eq!(db.class_size("k"), 5);
        assert_eq!(db.code("k", &Raw::Int(3)), Some(3));
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let build = |rows: Vec<Vec<Raw>>| {
            let mut db = Database::new();
            db.create_relation("r", &[("city", "city"), ("st", "state")], rows)
                .unwrap();
            db.relation_fingerprint("r").unwrap()
        };
        let rows = || {
            vec![
                vec![Raw::str("Toronto"), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::str("ON")],
            ]
        };
        assert_eq!(build(rows()), build(rows()), "same content, same print");
        let mut changed = rows();
        changed[1][0] = Raw::str("Ottawa");
        assert_ne!(build(rows()), build(changed), "changed cell changes print");
        let mut shorter = rows();
        shorter.pop();
        assert_ne!(build(rows()), build(shorter), "row count changes print");
        assert!(
            Database::new().relation_fingerprint("r").is_err(),
            "unknown relation is a typed error"
        );
    }

    #[test]
    fn fingerprint_sees_sibling_growing_a_shared_class() {
        // A sibling relation interning new values into a shared class
        // changes the class's domain size — and therefore the BDD block
        // width — so the fingerprint must change even though this
        // relation's own rows did not.
        let mut db = Database::new();
        db.create_relation("r", &[("c", "city")], vec![vec![Raw::str("Toronto")]])
            .unwrap();
        let before = db.relation_fingerprint("r").unwrap();
        db.create_relation("s", &[("c", "city")], vec![vec![Raw::str("Ottawa")]])
            .unwrap();
        let after = db.relation_fingerprint("r").unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn decode_row_round_trips() {
        let mut db = Database::new();
        db.create_relation(
            "r",
            &[("city", "city"), ("ac", "areacode")],
            vec![vec![Raw::str("Toronto"), Raw::Int(416)]],
        )
        .unwrap();
        let rel = db.relation("r").unwrap();
        let row = rel.row(0);
        let rel_clone = rel.clone();
        assert_eq!(
            db.decode_row(&rel_clone, &row),
            vec![Raw::str("Toronto"), Raw::Int(416)]
        );
    }
}
