//! Error type for the relational engine.

use std::fmt;

/// Errors produced by catalog operations and plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A plan or catalog call referenced a relation that does not exist.
    UnknownRelation(String),
    /// A column name was not found in a relation's schema.
    UnknownColumn {
        /// The relation being addressed.
        relation: String,
        /// The missing column.
        column: String,
    },
    /// A column index was out of bounds for a schema.
    ColumnOutOfRange {
        /// The offending index.
        index: usize,
        /// The relation's arity.
        arity: usize,
    },
    /// A row had the wrong number of values for its schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Two columns being joined/compared belong to different attribute
    /// classes, so their dictionary codes are not comparable.
    ClassMismatch {
        /// Class of the left column.
        left: String,
        /// Class of the right column.
        right: String,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// Malformed CSV input. Carries the position diagnostics from the
    /// parser so callers can point at the offending character instead of
    /// panicking or reporting a bare string.
    Csv {
        /// Relation the document was being loaded into.
        relation: String,
        /// 1-based line where the problem was found.
        line: usize,
        /// 1-based column of the offending character, when one character
        /// is to blame; `None` for whole-row problems.
        column: Option<usize>,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            StoreError::UnknownColumn { relation, column } => {
                write!(f, "relation {relation:?} has no column {column:?}")
            }
            StoreError::ColumnOutOfRange { index, arity } => {
                write!(f, "column index {index} out of range for arity {arity}")
            }
            StoreError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: expected {expected}, got {got}")
            }
            StoreError::ClassMismatch { left, right } => write!(
                f,
                "columns of classes {left:?} and {right:?} are not comparable"
            ),
            StoreError::DuplicateRelation(name) => {
                write!(f, "relation {name:?} already exists")
            }
            StoreError::Csv {
                relation,
                line,
                column,
                message,
            } => match column {
                Some(col) => write!(
                    f,
                    "csv for {relation:?}: line {line}, column {col}: {message}"
                ),
                None => write!(f, "csv for {relation:?}: line {line}: {message}"),
            },
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
