//! Information-theoretic statistics over relations (paper, Section 3).
//!
//! Implements Definition 1 — entropy `H(v̄)`, conditional entropy
//! `H(v′|v̄)`, information gain `I(v̄; v′)` — and the Φ measure of
//! Section 3.2. These drive the `MaxInf-Gain` and `Prob-Converge` variable-
//! ordering heuristics in `relcheck-core`.
//!
//! On the Φ measure: the paper writes `Φ(v̄) = Σ φ log φ` and asks for
//! orderings under which Φ "converges as rapidly as possible to 0", i.e.
//! prefixes whose membership probability φ sits near the extremes 0/1.
//! Taken literally that sum is dominated by domain-size artifacts (we
//! verified it misranks orderings badly); the faithful reading of the
//! paper's own experiment — "a random tuple is drawn, we know the prefix
//! values; how uncertain is membership?" — is the **expected residual
//! binary entropy** of membership over a uniformly random prefix cell:
//!
//! ```text
//! Φ(v̄) = (1/|dom(v̄)|) · Σ_x̄  H_b(φ(v̄ = x̄)),
//! H_b(p) = −p·log₂ p − (1−p)·log₂(1−p)
//! ```
//!
//! which is 0 exactly when every prefix resolves membership (φ ∈ {0,1},
//! the paper's `Φ(V) = 0` invariant), is non-negative, and is minimized by
//! the `argmin` of the paper's Figure 1. The paper's `Σ φ log φ` is the
//! dominant term of `−Σ H_b` up to normalization. Empirically this reading
//! reproduces the paper's headline result (Prob-Converge near-optimal on
//! product-structured relations) where the literal sum does not; see
//! EXPERIMENTS.md.

use crate::relation::Relation;
use std::collections::HashMap;

/// Multiplicities of the distinct value combinations in the given columns.
pub fn group_sizes(rel: &Relation, cols: &[usize]) -> Vec<usize> {
    if cols.is_empty() {
        return if rel.is_empty() {
            vec![]
        } else {
            vec![rel.len()]
        };
    }
    // Pack each key into a u128 when the bit budget allows (it always does
    // for the paper's ≤5 attributes); otherwise fall back to vector keys.
    let widths: Vec<u32> = cols
        .iter()
        .map(|&c| {
            let max = rel.col(c).iter().copied().max().unwrap_or(0);
            (32 - (max | 1).leading_zeros()).max(1)
        })
        .collect();
    let total: u32 = widths.iter().sum();
    if total <= 128 {
        let mut groups: HashMap<u128, usize> = HashMap::with_capacity(rel.len());
        for i in 0..rel.len() {
            let mut key = 0u128;
            for (&c, &w) in cols.iter().zip(&widths) {
                key = key << w | rel.col(c)[i] as u128;
            }
            *groups.entry(key).or_insert(0) += 1;
        }
        groups.into_values().collect()
    } else {
        let mut groups: HashMap<Vec<u32>, usize> = HashMap::with_capacity(rel.len());
        for i in 0..rel.len() {
            let key: Vec<u32> = cols.iter().map(|&c| rel.col(c)[i]).collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        groups.into_values().collect()
    }
}

/// Number of distinct value combinations in the given columns — the
/// cardinality statistic the checker's plan-time cost gates consume.
/// With `cols` empty this is 1 for a non-empty relation and 0 otherwise.
pub fn distinct_count(rel: &Relation, cols: &[usize]) -> usize {
    group_sizes(rel, cols).len()
}

/// Mean multiplicity of a distinct value combination in the given columns:
/// `‖R‖ / distinct_count`. This estimates how many rows survive pinning
/// those columns to constants (the planner's selectivity proxy). Zero for
/// an empty relation.
pub fn avg_group_size(rel: &Relation, cols: &[usize]) -> f64 {
    let d = distinct_count(rel, cols);
    if d == 0 {
        0.0
    } else {
        rel.len() as f64 / d as f64
    }
}

/// Entropy `H(v̄) = −Σ p(v̄=x̄) log₂ p(v̄=x̄)` with `p` the empirical
/// distribution over the relation's rows. Zero for an empty relation.
pub fn entropy(rel: &Relation, cols: &[usize]) -> f64 {
    let n = rel.len() as f64;
    if rel.is_empty() {
        return 0.0;
    }
    group_sizes(rel, cols)
        .into_iter()
        .map(|c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Conditional entropy `H(target | given) = H(given ∪ target) − H(given)`
/// (chain rule).
pub fn cond_entropy(rel: &Relation, given: &[usize], target: usize) -> f64 {
    let mut all = given.to_vec();
    all.push(target);
    (entropy(rel, &all) - entropy(rel, given)).max(0.0)
}

/// Information gain `I(given; target) = H(given) − H(target | given)` —
/// exactly Definition 1 of the paper (note this is *not* symmetric mutual
/// information; it follows the paper's formula).
pub fn info_gain(rel: &Relation, given: &[usize], target: usize) -> f64 {
    entropy(rel, given) - cond_entropy(rel, given, target)
}

/// The Φ measure of Section 3.2, in the expected-residual-uncertainty
/// reading (see module docs): the mean, over a uniformly random prefix
/// cell `x̄ ∈ dom(v̄)`, of the binary entropy of the membership probability
/// `φ(v̄=x̄) = ‖R|v̄=x̄‖ / Π_{v ∉ v̄} |dom(v)|`. Zero iff every prefix cell
/// already decides membership; lower = faster convergence.
///
/// `dom_sizes` gives `|dom(v)|` for **every** column of the relation
/// (aligned with the schema).
pub fn phi_measure(rel: &Relation, cols: &[usize], dom_sizes: &[u64]) -> f64 {
    assert_eq!(
        dom_sizes.len(),
        rel.arity(),
        "dom_sizes must cover every column of the relation"
    );
    let denom: f64 = (0..rel.arity())
        .filter(|c| !cols.contains(c))
        .map(|c| dom_sizes[c] as f64)
        .product();
    let prefix_space: f64 = cols.iter().map(|&c| dom_sizes[c] as f64).product();
    let total: f64 = group_sizes(rel, cols)
        .into_iter()
        .map(|c| {
            let phi = c as f64 / denom;
            if phi <= 0.0 || phi >= 1.0 {
                0.0 // membership fully resolved at this cell
            } else {
                -phi * phi.log2() - (1.0 - phi) * (1.0 - phi).log2()
            }
        })
        .sum();
    // Unobserved prefix cells have φ = 0 (resolved) and contribute nothing.
    total / prefix_space
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Schema;

    fn rel(rows: Vec<Vec<u32>>) -> Relation {
        let arity = rows.first().map_or(2, Vec::len);
        let cols: Vec<(String, String)> = (0..arity)
            .map(|i| (format!("c{i}"), format!("k{i}")))
            .collect();
        let refs: Vec<(&str, &str)> = cols.iter().map(|(n, c)| (n.as_str(), c.as_str())).collect();
        Relation::from_rows(Schema::new(&refs), rows).unwrap()
    }

    #[test]
    fn entropy_of_uniform_column() {
        // 4 equally frequent values → H = 2 bits.
        let r = rel(vec![vec![0, 0], vec![1, 0], vec![2, 0], vec![3, 0]]);
        assert!((entropy(&r, &[0]) - 2.0).abs() < 1e-12);
        // Constant column → H = 0.
        assert!(entropy(&r, &[1]).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_skewed_column() {
        // p = (3/4, 1/4): H = 0.811278…
        let r = rel(vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![1, 3]]);
        let expected = -(0.75f64 * 0.75f64.log2() + 0.25 * 0.25f64.log2());
        assert!((entropy(&r, &[0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn joint_entropy_at_least_marginal() {
        let r = rel(vec![
            vec![0, 0],
            vec![0, 1],
            vec![1, 0],
            vec![1, 1],
            vec![1, 0],
        ]);
        assert!(entropy(&r, &[0, 1]) >= entropy(&r, &[0]) - 1e-12);
        assert!(entropy(&r, &[0, 1]) >= entropy(&r, &[1]) - 1e-12);
    }

    #[test]
    fn cond_entropy_zero_when_functionally_determined() {
        // col1 = col0 mod 2 → H(col1 | col0) = 0.
        let rows: Vec<Vec<u32>> = (0..8).map(|i| vec![i, i % 2]).collect();
        let r = rel(rows);
        assert!(cond_entropy(&r, &[0], 1).abs() < 1e-12);
        // But H(col0 | col1) > 0: col1 doesn't determine col0.
        assert!(cond_entropy(&r, &[1], 0) > 1.0);
    }

    #[test]
    fn info_gain_matches_definition() {
        let r = rel(vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![1, 3]]);
        let ig = info_gain(&r, &[0], 1);
        let manual = entropy(&r, &[0]) - (entropy(&r, &[0, 1]) - entropy(&r, &[0]));
        assert!((ig - manual).abs() < 1e-12);
    }

    #[test]
    fn group_sizes_empty_cases() {
        let r = rel(vec![]);
        assert!(group_sizes(&r, &[0]).is_empty());
        let r2 = rel(vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(group_sizes(&r2, &[]), vec![2]);
    }

    #[test]
    fn distinct_count_and_avg_group_size() {
        // Rows must be distinct: Relation has set semantics and dedupes.
        let r = rel(vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![1, 3]]);
        assert_eq!(distinct_count(&r, &[0]), 2);
        assert_eq!(distinct_count(&r, &[0, 1]), 4);
        assert_eq!(distinct_count(&r, &[]), 1);
        assert!((avg_group_size(&r, &[0]) - 2.0).abs() < 1e-12);
        let empty = rel(vec![]);
        assert_eq!(distinct_count(&empty, &[0]), 0);
        assert_eq!(avg_group_size(&empty, &[0]), 0.0);
    }

    #[test]
    fn phi_zero_when_fully_determined() {
        // With all columns selected, φ ∈ {0, 1} (paper: Φ(V) = 0).
        let r = rel(vec![vec![0, 1], vec![2, 3]]);
        let phi = phi_measure(&r, &[0, 1], &[4, 4]);
        assert!(phi.abs() < 1e-12);
    }

    #[test]
    fn phi_prefers_discriminating_prefixes() {
        // R = {(a, b) : b = a} over dom 4×4. Knowing column 0 leaves exactly
        // one valid completion out of 4 → φ = 1/4 per cell, 4 cells,
        // normalized by |dom(col0)| = 4: Φ = H_b(1/4).
        let rows: Vec<Vec<u32>> = (0..4).map(|i| vec![i, i]).collect();
        let r = rel(rows);
        let phi0 = phi_measure(&r, &[0], &[4, 4]);
        let hb = |p: f64| -p * p.log2() - (1.0 - p) * (1.0 - p).log2();
        assert!((phi0 - hb(0.25)).abs() < 1e-12, "got {phi0}");
    }

    #[test]
    fn phi_decreases_along_resolving_prefixes() {
        // For the diagonal relation, knowing both columns resolves
        // membership completely; knowing one leaves residual uncertainty.
        let rows: Vec<Vec<u32>> = (0..8).map(|i| vec![i, i]).collect();
        let r = rel(rows);
        let one = phi_measure(&r, &[0], &[8, 8]);
        let both = phi_measure(&r, &[0, 1], &[8, 8]);
        assert!(one > 0.0);
        assert!(both.abs() < 1e-12);
        assert!(both < one);
    }

    #[test]
    fn wide_keys_fall_back_gracefully() {
        // Force the Vec-key path with five huge-coded columns.
        let rows: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i << 20; 5]).collect();
        let r = rel(rows);
        // 5 columns × ~25 bits = 125 ≤ 128 still packs; push to 6 columns.
        let rows6: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i << 24; 6]).collect();
        let r6 = rel(rows6);
        assert_eq!(group_sizes(&r, &[0, 1, 2, 3, 4]).len(), 10);
        assert_eq!(group_sizes(&r6, &[0, 1, 2, 3, 4, 5]).len(), 10);
    }
}
