#![warn(missing_docs)]

//! # relcheck-relstore — in-memory relational engine and statistics
//!
//! The relational substrate under the ICDE 2007 constraint-violation system:
//!
//! * **dictionary-encoded columnar relations** with set semantics
//!   ([`Relation`]): attribute values are interned per *attribute class*
//!   (shared dictionaries), so equality across columns and relations is code
//!   equality — exactly the precondition for the BDD finite-domain encoding;
//! * a **relational algebra** ([`algebra`]) with hash-based select / project
//!   / join / anti-join / union / difference / product and functional-
//!   dependency checking — the operators the paper's "SQL approach" baseline
//!   is built from;
//! * a small **logical plan language and executor** ([`plan`]) so violation
//!   queries can be composed and run like the paper's SQL statements;
//! * **information-theoretic statistics** ([`stats`]): entropy, conditional
//!   entropy, information gain, and the paper's Φ measure — the inputs to
//!   the `MaxInf-Gain` and `Prob-Converge` variable-ordering heuristics
//!   (Section 3).
//!
//! ```
//! use relcheck_relstore::{Database, Raw};
//!
//! let mut db = Database::new();
//! db.create_relation(
//!     "phones",
//!     &[("city", "city"), ("areacode", "areacode")],
//!     vec![
//!         vec![Raw::str("Toronto"), Raw::Int(416)],
//!         vec![Raw::str("Toronto"), Raw::Int(647)],
//!         vec![Raw::str("Oshawa"), Raw::Int(905)],
//!     ],
//! ).unwrap();
//! assert_eq!(db.relation("phones").unwrap().len(), 3);
//! ```

pub mod algebra;
mod catalog;
pub mod csv;
mod error;
pub mod plan;
mod relation;
pub mod stats;
mod value;

pub use catalog::Database;
pub use error::{Result, StoreError};
pub use relation::{Relation, Schema};
pub use value::{Dict, Raw};
