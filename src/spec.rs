//! Project spec files for the `relcheck` CLI.
//!
//! A spec file declares tables (CSV-backed) and named constraints:
//!
//! ```text
//! # comments and blank lines are ignored
//! table CUSTOMERS from data/customers.csv header with
//!     city:city, areacode:areacode, state:state
//!
//! constraint toronto-prefixes:
//!     forall c, a, s. CUSTOMERS(c, a, s) & c = "Toronto" -> a in {416, 647, 905}
//! ```
//!
//! Grammar (line-oriented; a declaration continues onto following lines
//! until the next `table`/`constraint` keyword):
//!
//! ```text
//! table <NAME> from <PATH> [header] with <col>:<class> (, <col>:<class>)*
//! constraint <NAME>: <FORMULA>
//! ```

use relcheck_logic::{parse as parse_formula, Formula};
use std::fmt;

/// A table declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDecl {
    /// Relation name.
    pub name: String,
    /// CSV path, relative to the spec file.
    pub path: String,
    /// Skip the first CSV row.
    pub has_header: bool,
    /// `(column, class)` pairs.
    pub columns: Vec<(String, String)>,
}

/// A named constraint.
#[derive(Debug, Clone)]
pub struct ConstraintDecl {
    /// Constraint name (for reports).
    pub name: String,
    /// The parsed sentence.
    pub formula: Formula,
}

/// A parsed spec file.
#[derive(Debug, Clone, Default)]
pub struct Spec {
    /// Tables, in declaration order.
    pub tables: Vec<TableDecl>,
    /// Constraints, in declaration order.
    pub constraints: Vec<ConstraintDecl>,
}

/// Spec parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Line of the offending declaration.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parse a spec document.
pub fn parse_spec(text: &str) -> Result<Spec, SpecError> {
    // Gather declarations: a declaration starts at a line beginning with
    // `table` or `constraint` and spans until the next such line.
    let mut decls: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let starts_decl = line.starts_with("table ") || line.starts_with("constraint ");
        if starts_decl {
            decls.push((i + 1, line.to_owned()));
        } else {
            match decls.last_mut() {
                Some((_, body)) => {
                    body.push(' ');
                    body.push_str(line);
                }
                None => {
                    return Err(SpecError {
                        line: i + 1,
                        message: "expected a `table` or `constraint` declaration".to_owned(),
                    })
                }
            }
        }
    }
    let mut spec = Spec::default();
    for (line, decl) in decls {
        if let Some(rest) = decl.strip_prefix("table ") {
            spec.tables.push(parse_table(line, rest)?);
        } else if let Some(rest) = decl.strip_prefix("constraint ") {
            spec.constraints.push(parse_constraint(line, rest)?);
        }
    }
    Ok(spec)
}

fn parse_table(line: usize, rest: &str) -> Result<TableDecl, SpecError> {
    let err = |message: String| SpecError { line, message };
    let (name, rest) = rest
        .split_once(" from ")
        .ok_or_else(|| err("table declaration needs `from <path>`".to_owned()))?;
    let (path_part, cols_part) = rest
        .split_once(" with ")
        .ok_or_else(|| err("table declaration needs `with <col>:<class>, …`".to_owned()))?;
    let mut path = path_part.trim();
    let mut has_header = false;
    if let Some(stripped) = path.strip_suffix(" header") {
        path = stripped.trim();
        has_header = true;
    }
    if path.is_empty() {
        return Err(err("empty CSV path".to_owned()));
    }
    let mut columns = Vec::new();
    for part in cols_part.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (col, class) = part
            .split_once(':')
            .ok_or_else(|| err(format!("column spec {part:?} must be <col>:<class>")))?;
        columns.push((col.trim().to_owned(), class.trim().to_owned()));
    }
    if columns.is_empty() {
        return Err(err("table needs at least one column".to_owned()));
    }
    Ok(TableDecl {
        name: name.trim().to_owned(),
        path: path.to_owned(),
        has_header,
        columns,
    })
}

fn parse_constraint(line: usize, rest: &str) -> Result<ConstraintDecl, SpecError> {
    let (name, body) = rest.split_once(':').ok_or_else(|| SpecError {
        line,
        message: "constraint declaration needs `<name>: <formula>`".to_owned(),
    })?;
    let formula = parse_formula(body.trim()).map_err(|e| SpecError {
        line,
        message: format!("in constraint {:?}: {e}", name.trim()),
    })?;
    Ok(ConstraintDecl {
        name: name.trim().to_owned(),
        formula,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# phone data quality project
table CUSTOMERS from data/customers.csv header with
    city:city, areacode:areacode, state:state

table CITY_STATE from data/reference.csv with city:city, state:state

constraint toronto-prefixes:
    forall c, a, s. CUSTOMERS(c, a, s) & c = "Toronto" -> a in {416, 647, 905}

constraint reference-agrees:
    forall c, a, s, s2.
        CUSTOMERS(c, a, s) & CITY_STATE(c, s2) -> s = s2
"#;

    #[test]
    fn parses_tables_and_constraints() {
        let spec = parse_spec(SAMPLE).unwrap();
        assert_eq!(spec.tables.len(), 2);
        assert_eq!(spec.constraints.len(), 2);
        let t = &spec.tables[0];
        assert_eq!(t.name, "CUSTOMERS");
        assert_eq!(t.path, "data/customers.csv");
        assert!(t.has_header);
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.columns[1], ("areacode".to_owned(), "areacode".to_owned()));
        assert!(!spec.tables[1].has_header);
        assert_eq!(spec.constraints[0].name, "toronto-prefixes");
        assert!(spec.constraints[1].formula.is_sentence());
    }

    #[test]
    fn multiline_declarations_join() {
        let spec = parse_spec(
            "constraint x:\n  forall a.\n  R(a) ->\n  a in {1}\ntable R from r.csv with a:k",
        )
        .unwrap();
        assert_eq!(spec.constraints.len(), 1);
        assert_eq!(spec.tables.len(), 1);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let err = parse_spec("table T with a:k").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("from"));
        let err = parse_spec("\n\nnonsense first").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse_spec("constraint broken: forall . R(x)").unwrap_err();
        assert!(err.message.contains("broken"));
    }

    #[test]
    fn missing_column_class_rejected() {
        let err = parse_spec("table T from t.csv with a").unwrap_err();
        assert!(err.message.contains("<col>:<class>"));
    }
}
