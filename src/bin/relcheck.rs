//! `relcheck` — command-line constraint validation.
//!
//! ```text
//! relcheck run <spec-file> [--limit N] [--sql] [--ordering STRATEGY] [--threads N]
//!                          [--metrics PATH] [--deadline-ms N] [--index-cache DIR]
//!                          [--fail-spec SPEC] [--fail-seed N]
//!                          [--certify PATH] [--witness-limit N]
//! relcheck explain <spec-file> <constraint-name>
//! relcheck plan <spec-file> [constraint-name] [--ordering STRATEGY]
//! relcheck audit emit <spec-file> <bundle.json> [--witness-limit N] [--ordering STRATEGY]
//! relcheck audit verify <spec-file> <bundle.json>
//! relcheck metrics-check <metrics.json>
//! relcheck bench-check <BENCH.json>...
//! relcheck index <build|verify|repair|gc|apply> <spec-file> --index-cache DIR
//!                [deltas...] [--ordering STRATEGY] [--fail-spec SPEC] [--fail-seed N]
//! relcheck serve <spec-file> [--index-cache DIR] [--socket PATH] [--ordering STRATEGY]
//!                [--metrics PATH] [--deadline-ms N] [--fail-spec SPEC] [--fail-seed N]
//!                [--witness-limit N] [--max-sessions N] [--queue-depth N]
//!                [--idle-timeout-ms N] [--shed-threshold-ms N]
//! relcheck connect <socket-path>
//! ```
//!
//! The spec file declares CSV-backed tables and named first-order
//! constraints (see [`relcheck::spec`]). `run` loads everything, identifies
//! the violated constraints on BDD logical indices (or pure SQL with
//! `--sql`), prints a report, lists up to `--limit` violating tuples per
//! violated constraint, and exits non-zero if anything is violated.
//! Orderings: `prob-converge` (default), `max-inf-gain`, `min-cond-entropy`,
//! `sifted`, `adaptive` (workload-scored, falls back to `prob-converge`
//! before any check has run), `schema`, `random`. With `--threads N` (N > 1) the constraint
//! set is checked on N worker threads, each with its own BDD manager;
//! verdicts are identical to the serial pass. `--metrics PATH` enables
//! telemetry and writes the machine-readable run report (the schema in
//! DESIGN.md) to PATH; `metrics-check` validates such a file against the
//! schema and its conservation laws.
//!
//! Resilience controls: `--deadline-ms N` bounds the wall-clock time any
//! single constraint may spend inside the BDD engine — a constraint that
//! exceeds it walks the degradation ladder (SQL fallback, brute force)
//! instead of stalling the run. `--fail-spec 'site=p,...'` arms the
//! deterministic fault-injection registry (sites: `index-build`,
//! `snapshot-decode`, `lane-spawn`, `apply`, `sql-fallback`,
//! `segment-write`, `journal-append`, `manifest-write`) with firing
//! probability `p`, seeded by `--fail-seed N` (default 0). Constraints that
//! cannot be decided under injected faults report `DEGRADED`/`ERRORED`
//! verdicts; only genuine `VIOLATED` verdicts make the exit code non-zero.
//!
//! Certificates: `run --certify PATH` writes a JSON bundle of one
//! [`relcheck::core_::Certificate`] per constraint (witness tuples for
//! violations, capped at `--witness-limit`, default 10) and self-verifies
//! each decided certificate with the independent naive re-checker before
//! exiting. `audit emit` produces the same bundle stand-alone; `audit
//! verify` re-checks a bundle against the spec's CSVs using only the
//! first-order interpreter — no planner, no rewrites, no BDDs — and exits
//! 1 if any certificate fails the audit (tampered witnesses, forged
//! verdicts, stale fingerprints). Undecided (`DEGRADED`/`ERRORED`)
//! certificates are reported as unauditable rather than silently passed.
//!
//! `plan` prints the compiled [`relcheck::core_::CheckPlan`] for one (or
//! every) constraint without executing it: the rewrite passes that ran,
//! the formula before and after each one, the cost-gate decisions, and
//! the degradation-ladder rungs the plan would execute. The output is
//! deterministic — two invocations on the same spec emit byte-identical
//! plans.
//!
//! Persistence: `--index-cache DIR` warm-starts the run from a durable
//! on-disk index store (building and persisting whatever is missing or
//! unusable); verdicts are identical to a cold run. The `index`
//! subcommands manage the same store directly: `build` populates it,
//! `verify` reports per-relation health read-only, `repair` rebuilds
//! anything broken, `gc` removes orphaned files, and `apply` durably
//! journals tuple deltas (`+REL:v1,v2,...` inserts, `-REL:v1,v2,...`
//! deletes) and folds them into the cached indices via incremental
//! maintenance.
//!
//! `serve` keeps everything warm across requests: it loads the spec,
//! primes every constraint once, then reads a line-oriented command
//! protocol from stdin (or a unix socket with `--socket PATH`) —
//! `+REL:v,…` / `-REL:v,…` tuple deltas, `check [name]`, `certify
//! [name]`, `stats`, `quit`. Each check re-verifies only the constraints
//! whose read-set intersects the relations dirtied since the last check;
//! the rest answer from cached verdicts. `certify` re-checks the named
//! (or every) constraint fresh, emits its certificate as a JSON line,
//! and self-verifies it with the naive re-checker. With `--index-cache
//! DIR` deltas are journaled durably before being applied (transient
//! append failures retry with bounded backoff; exhaustion degrades the
//! delta rows-only and the reply carries `durable=false`), so a killed
//! session warm-starts to the acknowledged state. `--metrics PATH`
//! writes the schema-v7 document (with the `serve`, `audit`, and
//! `overload` blocks) on shutdown. The exit code reflects the final
//! verdicts: 0 when nothing is violated.
//!
//! Overload resilience: every request — stdin or socket — flows through
//! a single engine-actor thread behind a bounded queue
//! (`--queue-depth`). Socket mode serves up to `--max-sessions`
//! concurrent connections, each on its own panic-isolated thread with an
//! idle cap (`--idle-timeout-ms`) and a line-length cap, so a slowloris
//! or garbage stream cannot wedge anyone else. The admission governor
//! sheds requests into the SQL rung of the degradation ladder (exact,
//! cheaper on memory) when the queue backs up or the last request was
//! slower than `--shed-threshold-ms`, and rejects with a typed `busy
//! <retry-after-ms>` line when the queue is full. `quit` (or SIGTERM in
//! socket mode) drains gracefully: in-flight requests finish, the
//! journal flushes, and the final metrics are emitted. `connect` is the
//! matching scriptable client: stdin lines go to the socket, replies to
//! stdout.

use relcheck::core_::certify::{
    bundle_to_json, emit_certificates, parse_bundle, verify_bundle, AuditError, Certificate,
    DEFAULT_WITNESS_LIMIT,
};
use relcheck::core_::checker::{CheckReport, Checker, CheckerOptions, Verdict};
use relcheck::core_::ordering::OrderingStrategy;
use relcheck::core_::plan::plans_to_json;
use relcheck::core_::policy::{advise, apply_advice, render_report, WorkloadProfile};
use relcheck::core_::registry::ConstraintRegistry;
use relcheck::core_::serve::{
    parse_delta, ServeActor, ServeClient, ServeConfig, ServeEngine, Submission,
};
use relcheck::core_::store::{Delta, IndexStore, VerifyStatus};
use relcheck::core_::telemetry::{
    validate_bench_json, validate_metrics_json, validate_plan_json, AuditMetrics, FleetTelemetry,
    RunMetrics, WorkerTelemetry,
};
use relcheck::logic::Formula;
use relcheck::relstore::Database;
use relcheck::spec::{parse_spec, Spec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("relcheck: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:\n  relcheck run <spec-file> [--limit N] [--sql] [--ordering STRATEGY] [--threads N] \
     [--metrics PATH] [--deadline-ms N] [--index-cache DIR] [--route auto|static] \
     [--fail-spec SPEC] [--fail-seed N] [--certify PATH] [--witness-limit N]\n  \
     relcheck explain <spec-file> <constraint-name>\n  \
     relcheck plan <spec-file> [constraint-name] [--ordering STRATEGY] [--json]\n  \
     relcheck advise <spec-file> [--index-cache DIR] [--ordering STRATEGY]\n  \
     relcheck audit emit <spec-file> <bundle.json> [--witness-limit N] [--ordering STRATEGY]\n  \
     relcheck audit verify <spec-file> <bundle.json>\n  \
     relcheck metrics-check <metrics.json>\n  \
     relcheck bench-check <BENCH.json>...\n  \
     relcheck index <build|verify|repair|gc|apply> <spec-file> --index-cache DIR \
     [+REL:v1,v2 | -REL:v1,v2 ...]\n  \
     relcheck serve <spec-file> [--index-cache DIR] [--socket PATH] [--ordering STRATEGY] \
     [--metrics PATH] [--deadline-ms N] [--fail-spec SPEC] [--fail-seed N] [--witness-limit N] \
     [--max-sessions N] [--queue-depth N] [--idle-timeout-ms N] [--shed-threshold-ms N]\n  \
     relcheck connect <socket-path>"
        .to_owned()
}

fn run(args: &[String]) -> Result<bool, String> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "explain" => cmd_explain(&args[1..]).map(|()| true),
        "plan" => cmd_plan(&args[1..]).map(|()| true),
        "advise" => cmd_advise(&args[1..]).map(|()| true),
        "audit" => cmd_audit(&args[1..]),
        "metrics-check" => cmd_metrics_check(&args[1..]).map(|()| true),
        "bench-check" => cmd_bench_check(&args[1..]).map(|()| true),
        "index" => cmd_index(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "connect" => cmd_connect(&args[1..]),
        _ => Err(usage()),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn ordering_from(name: &str) -> Result<OrderingStrategy, String> {
    Ok(match name {
        "prob-converge" => OrderingStrategy::ProbConverge,
        "max-inf-gain" => OrderingStrategy::MaxInfGain,
        "min-cond-entropy" => OrderingStrategy::MinCondEntropy,
        "sifted" => OrderingStrategy::Sifted,
        "adaptive" => OrderingStrategy::Adaptive,
        "schema" => OrderingStrategy::Schema,
        "random" => OrderingStrategy::Random(0xBDD),
        other => return Err(format!("unknown ordering {other:?}")),
    })
}

/// Load the spec and its CSV tables into a database.
fn load(spec_path: &str) -> Result<(Spec, Database), String> {
    load_with(spec_path, true)
}

/// [`load`] without the per-table progress lines — for commands whose
/// stdout must be byte-deterministic report text (`advise`) or a single
/// machine-readable document (`plan --json`).
fn load_quiet(spec_path: &str) -> Result<(Spec, Database), String> {
    load_with(spec_path, false)
}

fn load_with(spec_path: &str, verbose: bool) -> Result<(Spec, Database), String> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| e.to_string())?;
    if spec.tables.is_empty() {
        return Err("spec declares no tables".to_owned());
    }
    let base: PathBuf = Path::new(spec_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut db = Database::new();
    for t in &spec.tables {
        let csv_path = base.join(&t.path);
        let csv = std::fs::read(&csv_path)
            .map_err(|e| format!("cannot read {}: {e}", csv_path.display()))?;
        let columns: Vec<(&str, &str)> = t
            .columns
            .iter()
            .map(|(c, k)| (c.as_str(), k.as_str()))
            .collect();
        db.create_relation_from_csv_bytes(&t.name, &columns, &csv, t.has_header)
            .map_err(|e| format!("loading table {}: {e}", t.name))?;
        if verbose {
            println!(
                "loaded {:<16} {:>8} rows from {}",
                t.name,
                db.relation(&t.name).map_err(|e| e.to_string())?.len(),
                csv_path.display()
            );
        }
    }
    Ok((spec, db))
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let spec_path = args.first().ok_or_else(usage)?;
    let limit: usize = flag_value(args, "--limit")
        .map(|v| v.parse().map_err(|_| "--limit expects a number".to_owned()))
        .transpose()?
        .unwrap_or(10);
    let force_sql = args.iter().any(|a| a == "--sql");
    let ordering = match flag_value(args, "--ordering") {
        Some(name) => ordering_from(name)?,
        None => OrderingStrategy::ProbConverge,
    };
    let threads: usize = flag_value(args, "--threads")
        .map(|v| {
            v.parse()
                .map_err(|_| "--threads expects a number".to_owned())
        })
        .transpose()?
        .unwrap_or(1);
    if threads == 0 {
        return Err("--threads expects at least 1".to_owned());
    }
    if force_sql && threads > 1 {
        return Err("--sql and --threads cannot be combined".to_owned());
    }
    let index_cache = flag_value(args, "--index-cache").map(str::to_owned);
    if force_sql && index_cache.is_some() {
        return Err("--sql and --index-cache cannot be combined".to_owned());
    }
    let route_auto = match flag_value(args, "--route") {
        Some("auto") => true,
        Some("static") | None => false,
        Some(other) => return Err(format!("--route expects auto or static, got {other:?}")),
    };
    if force_sql && route_auto {
        return Err("--sql and --route auto cannot be combined".to_owned());
    }
    let metrics_path = flag_value(args, "--metrics").map(str::to_owned);
    let certify_path = flag_value(args, "--certify").map(str::to_owned);
    let witness_limit = parse_witness_limit(args)?;
    let deadline = flag_value(args, "--deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "--deadline-ms expects a number of milliseconds".to_owned())
        })
        .transpose()?
        .map(std::time::Duration::from_millis);
    let fail_seed: u64 = flag_value(args, "--fail-seed")
        .map(|v| {
            v.parse()
                .map_err(|_| "--fail-seed expects a number".to_owned())
        })
        .transpose()?
        .unwrap_or(0);
    if let Some(spec) = flag_value(args, "--fail-spec") {
        relcheck::bdd::failpoint::configure_spec(spec, fail_seed)
            .map_err(|e| format!("--fail-spec: {e}"))?;
        // Injected lane panics are caught and folded into `ERRORED`
        // verdicts; keep the default hook from spraying backtraces for
        // faults we asked for.
        std::panic::set_hook(Box::new(|_| {}));
    }
    if force_sql && certify_path.is_some() {
        // Certificate witnesses come off the violation BDD; a pure-SQL
        // run has none to enumerate from.
        return Err("--sql and --certify cannot be combined".to_owned());
    }
    let (spec, db) = load(spec_path)?;
    if spec.constraints.is_empty() {
        return Err("spec declares no constraints".to_owned());
    }
    // A persisted workload profile (written by earlier --index-cache
    // runs) informs auto routing and apply-cache sizing. Corruption is a
    // warning, never an error: the run proceeds with a cold profile.
    let loaded_profile = match &index_cache {
        Some(dir) => match WorkloadProfile::load(Path::new(dir)) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("relcheck: warning: workload profile unreadable ({e}); starting cold");
                None
            }
        },
        None => None,
    };
    let opts = CheckerOptions {
        ordering,
        telemetry: metrics_path.is_some(),
        deadline,
        // Size the shared apply cache from the recorded workload before
        // the manager exists — only auto mode changes behaviour.
        apply_cache_slots: if route_auto {
            loaded_profile.as_ref().map(WorkloadProfile::cache_slots)
        } else {
            None
        },
        ..Default::default()
    };
    let mut checker = Checker::new(db, opts);
    let mut store = match &index_cache {
        Some(dir) => {
            let mut s =
                IndexStore::open(dir).map_err(|e| format!("opening index cache {dir}: {e}"))?;
            s.warm_start(&mut checker)
                .map_err(|e| format!("warm-starting from {dir}: {e}"))?;
            for rec in &s.stats.recoveries {
                println!(
                    "index-cache: recovered {:?} ({}): {}",
                    rec.relation, rec.reason, rec.detail
                );
            }
            println!(
                "index-cache: {} hit(s), {} miss(es), {} rebuild(s), {} journal record(s) replayed",
                s.stats.hits, s.stats.misses, s.stats.rebuilds, s.stats.journal_replayed
            );
            Some(s)
        }
        None => None,
    };
    let run_constraints: Vec<(String, Formula)> = spec
        .constraints
        .iter()
        .map(|c| (c.name.clone(), c.formula.clone()))
        .collect();
    // Auto routing: score the recorded workload through the cost model
    // and apply the advice before any check runs. Every route change
    // goes through the epoch-bumping invalidation paths, so verdicts
    // are unaffected — only the path to them.
    let mut policy_metrics = None;
    if route_auto {
        let prof = loaded_profile.clone().unwrap_or_default();
        let advice = advise(&prof, &mut checker, &run_constraints);
        let applied =
            apply_advice(&mut checker, &advice).map_err(|e| format!("applying advice: {e}"))?;
        println!(
            "route auto: {} relation(s) advised, {} sql-routed ({} newly marked), \
             {} rebuilt, apply cache {} slot(s)",
            advice.relations.len(),
            advice.sql_routed().len(),
            applied.sql_marked.len(),
            applied.rebuilt.len(),
            advice.cache_slots
        );
        policy_metrics = Some(advice.metrics(&prof, Some(&applied)));
    }
    println!();
    let mut plan_cache = None;
    let (reports, fleet) = if force_sql {
        spec.constraints
            .iter()
            .map(|c| Ok((c.name.clone(), checker.check_sql(&c.formula)?)))
            .collect::<Result<Vec<_>, relcheck::core_::CoreError>>()
            .map(|rs| (rs, None))
    } else if threads <= 1 {
        // Serial runs go through the registry so repeated constraints
        // (and future revalidation rounds) reuse compiled plans; the
        // single-lane telemetry matches what the parallel front-end
        // reports for one thread.
        let mut registry = ConstraintRegistry::new();
        for c in &spec.constraints {
            if !registry.register(&c.name, c.formula.clone()) {
                return Err(format!("duplicate constraint name {:?}", c.name));
            }
        }
        let before = checker.logical_db().manager().stats();
        registry.validate_all(&mut checker).map(|rs| {
            let after = checker.logical_db().manager().stats();
            let lane = WorkerTelemetry {
                worker: 0,
                constraints: (0..rs.len()).collect(),
                bdd: after.delta_since(&before),
                peak_nodes: after.peak_nodes,
                depth_hwm: after.depth_hwm,
            };
            plan_cache = Some(registry.plan_cache_stats());
            (rs, Some(FleetTelemetry::from_workers(vec![lane])))
        })
    } else {
        let constraints: Vec<(String, relcheck::logic::Formula)> = spec
            .constraints
            .iter()
            .map(|c| (c.name.clone(), c.formula.clone()))
            .collect();
        checker
            .check_all_parallel_telemetry(&constraints, threads)
            .map(|(rs, fleet)| (rs, Some(fleet)))
    }
    .map_err(|e| format!("checking constraints: {e}"))?;
    if let Some(store) = &mut store {
        store
            .write_back(&mut checker)
            .map_err(|e| format!("writing back index cache: {e}"))?;
        if store.stats.write_failures > 0 {
            eprintln!(
                "relcheck: warning: {} index-cache write(s) failed; the next run starts cold(er)",
                store.stats.write_failures
            );
        }
    }
    // Persist the workload profile next to the index cache: this run's
    // recording merged into whatever earlier runs accumulated. Like the
    // segment writes, a failure costs the next run advice, never
    // correctness.
    if let Some(dir) = &index_cache {
        let recorded = WorkloadProfile::record(&checker, &run_constraints, &reports);
        let mut merged = loaded_profile.clone().unwrap_or_default();
        merged.merge(&recorded);
        if let Some(pc) = plan_cache {
            merged.note_plan_cache(pc);
        }
        match merged.save(Path::new(dir)) {
            Ok(()) => println!(
                "workload profile: {} check(s) recorded into {dir}",
                merged.checks
            ),
            Err(e) => eprintln!("relcheck: warning: could not save workload profile: {e}"),
        }
    }
    // Emit + self-verify certificates before the metrics document so the
    // audit counters land in its schema-v6 `audit` block.
    let mut audit_metrics = None;
    let mut audit_failures = Vec::new();
    if let Some(path) = &certify_path {
        let constraints: Vec<(String, Formula)> = spec
            .constraints
            .iter()
            .map(|c| (c.name.clone(), c.formula.clone()))
            .collect();
        let certs = emit_certificates(&mut checker, &constraints, &reports, witness_limit)
            .map_err(|e| format!("emitting certificates: {e}"))?;
        let (stats, failures) = self_verify(checker.logical_db().db(), &constraints, &certs);
        std::fs::write(path, bundle_to_json(&certs))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "certificates: {} emitted ({} witness tuple(s)), {} self-verified, {} failed; \
             written to {path}",
            stats.emitted, stats.witnesses, stats.verified, stats.failed
        );
        audit_metrics = Some(stats);
        audit_failures = failures;
    }
    if let Some(path) = &metrics_path {
        let mut metrics = RunMetrics::from_reports(&reports, fleet, threads);
        if let Some(store) = &store {
            metrics.index_cache = Some(store.stats.clone());
        }
        metrics.plan_cache = plan_cache;
        metrics.audit = audit_metrics;
        metrics.policy = policy_metrics;
        let doc = metrics.to_json();
        debug_assert!(validate_metrics_json(&doc).is_ok());
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    if !audit_failures.is_empty() {
        // A fresh certificate failing its own audit is an engine bug or
        // a torn write, never a data problem — surface it as a hard error.
        return Err(format!(
            "certificate self-verification failed:\n  {}",
            audit_failures.join("\n  ")
        ));
    }
    let mut clean = true;
    let mut violated = Vec::new();
    for (c, (name, report)) in spec.constraints.iter().zip(&reports) {
        print_report_line(name, report);
        // Only a proven violation flips the exit code; `DEGRADED` and
        // `ERRORED` mean "undecided under faults", not "violated".
        if report.verdict == Verdict::Violated {
            clean = false;
            violated.push(c);
        }
    }
    let undecided = reports
        .iter()
        .filter(|(_, r)| !r.verdict.is_decided())
        .count();
    if undecided > 0 {
        println!("\n{undecided} constraint(s) undecided (degraded or errored) — rerun fault-free to decide them");
    }
    for c in violated {
        println!("\nviolating tuples of {:?} (up to {limit}):", c.name);
        match checker.find_violations(&c.formula) {
            Ok((rows, cols)) => {
                println!("  columns: {}", cols.join(", "));
                for i in 0..rows.len().min(limit) {
                    let decoded = checker.logical_db().db().decode_row(&rows, &rows.row(i));
                    println!(
                        "  ({})",
                        decoded
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
                if rows.len() > limit {
                    println!("  … and {} more", rows.len() - limit);
                }
            }
            Err(e) => println!("  (cannot enumerate: {e})"),
        }
    }
    Ok(clean)
}

/// One verdict line of the `run`/`serve` baseline report.
fn print_report_line(name: &str, report: &CheckReport) {
    let status = match report.verdict {
        Verdict::Holds => "ok",
        Verdict::Violated => "VIOLATED",
        Verdict::Degraded => "DEGRADED",
        Verdict::Errored => "ERRORED",
    };
    println!(
        "{:<32} {:<9} via {:?} in {:.2?}",
        name, status, report.method, report.elapsed
    );
    if let Some(err) = &report.error {
        println!("{:<32} ^ {err}", "");
    }
}

fn parse_witness_limit(args: &[String]) -> Result<usize, String> {
    flag_value(args, "--witness-limit")
        .map(|v| {
            v.parse()
                .map_err(|_| "--witness-limit expects a number".to_owned())
        })
        .transpose()
        .map(|v| v.unwrap_or(DEFAULT_WITNESS_LIMIT))
}

/// Self-verify freshly emitted certificates with the independent naive
/// re-checker and fold the outcomes into audit metrics. Undecided
/// (degraded/errored) certificates are unauditable by design and count
/// in neither the verified nor the failed bucket.
fn self_verify(
    db: &Database,
    constraints: &[(String, Formula)],
    certs: &[Certificate],
) -> (AuditMetrics, Vec<String>) {
    let mut stats = AuditMetrics {
        emitted: certs.len() as u64,
        witnesses: certs
            .iter()
            .filter_map(|c| c.witnesses.as_ref())
            .map(|w| w.tuples.len() as u64)
            .sum(),
        ..Default::default()
    };
    let mut failures = Vec::new();
    for (name, res) in verify_bundle(db, constraints, certs) {
        match res {
            Ok(_) => stats.verified += 1,
            Err(AuditError::Unauditable { .. }) => {}
            Err(e) => {
                stats.failed += 1;
                failures.push(format!("{name}: {e}"));
            }
        }
    }
    (stats, failures)
}

/// `relcheck audit <emit|verify>`: stand-alone certificate production and
/// the independent re-check (see the module docs for the trust model).
fn cmd_audit(args: &[String]) -> Result<bool, String> {
    let sub = args.first().ok_or_else(usage)?.as_str();
    let rest = &args[1..];
    match sub {
        "emit" => {
            let spec_path = rest.first().ok_or_else(usage)?;
            let out_path = rest
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "audit emit: output bundle path is required".to_owned())?;
            let witness_limit = parse_witness_limit(rest)?;
            let ordering = match flag_value(rest, "--ordering") {
                Some(name) => ordering_from(name)?,
                None => OrderingStrategy::ProbConverge,
            };
            let (spec, db) = load(spec_path)?;
            if spec.constraints.is_empty() {
                return Err("spec declares no constraints".to_owned());
            }
            let mut checker = Checker::new(
                db,
                CheckerOptions {
                    ordering,
                    ..Default::default()
                },
            );
            let mut registry = ConstraintRegistry::new();
            for c in &spec.constraints {
                if !registry.register(&c.name, c.formula.clone()) {
                    return Err(format!("duplicate constraint name {:?}", c.name));
                }
            }
            let reports = registry
                .validate_all(&mut checker)
                .map_err(|e| format!("checking constraints: {e}"))?;
            let constraints: Vec<(String, Formula)> = spec
                .constraints
                .iter()
                .map(|c| (c.name.clone(), c.formula.clone()))
                .collect();
            let certs = emit_certificates(&mut checker, &constraints, &reports, witness_limit)
                .map_err(|e| format!("emitting certificates: {e}"))?;
            println!();
            for (cert, (_, report)) in certs.iter().zip(&reports) {
                let w = cert.witnesses.as_ref().map_or(0, |w| w.tuples.len());
                println!(
                    "{:<32} {:<9} rung={} witnesses={}",
                    cert.constraint,
                    report.verdict.name(),
                    cert.rung,
                    w
                );
            }
            let (stats, failures) = self_verify(checker.logical_db().db(), &constraints, &certs);
            std::fs::write(out_path, bundle_to_json(&certs))
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            println!(
                "\ncertificates: {} emitted ({} witness tuple(s)), {} self-verified, {} failed; \
                 written to {out_path}",
                stats.emitted, stats.witnesses, stats.verified, stats.failed
            );
            if !failures.is_empty() {
                return Err(format!(
                    "certificate self-verification failed:\n  {}",
                    failures.join("\n  ")
                ));
            }
            Ok(true)
        }
        "verify" => {
            let spec_path = rest.first().ok_or_else(usage)?;
            let bundle_path = rest
                .get(1)
                .ok_or_else(|| "audit verify: bundle path is required".to_owned())?;
            let (spec, db) = load(spec_path)?;
            let constraints: Vec<(String, Formula)> = spec
                .constraints
                .iter()
                .map(|c| (c.name.clone(), c.formula.clone()))
                .collect();
            let text = std::fs::read_to_string(bundle_path)
                .map_err(|e| format!("cannot read {bundle_path}: {e}"))?;
            let certs = parse_bundle(&text).map_err(|e| format!("parsing {bundle_path}: {e}"))?;
            println!();
            let mut verified = 0usize;
            let mut unauditable = 0usize;
            let mut failed = 0usize;
            for (name, res) in verify_bundle(&db, &constraints, &certs) {
                match res {
                    Ok(o) => {
                        verified += 1;
                        println!(
                            "{:<32} ok        verdict={} witnesses={} recounted={}",
                            name,
                            o.verdict.name(),
                            o.witnesses_checked,
                            o.recounted
                        );
                    }
                    Err(AuditError::Unauditable { verdict, .. }) => {
                        // Undecided verdicts never silently pass: they are
                        // named here and excluded from "verified".
                        unauditable += 1;
                        println!("{:<32} unauditable ({})", name, verdict.name());
                    }
                    Err(e) => {
                        failed += 1;
                        println!("{name:<32} FAILED    {e}");
                    }
                }
            }
            println!(
                "\naudit: {} certificate(s) — {verified} verified, {unauditable} unauditable, \
                 {failed} failed",
                certs.len()
            );
            Ok(failed == 0)
        }
        other => Err(format!("unknown audit subcommand {other:?}\n{}", usage())),
    }
}

/// `relcheck serve`: the long-lived incremental check session (see the
/// module docs for the protocol).
fn cmd_serve(args: &[String]) -> Result<bool, String> {
    let spec_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(usage)?;
    let ordering = match flag_value(args, "--ordering") {
        Some(name) => ordering_from(name)?,
        None => OrderingStrategy::ProbConverge,
    };
    let metrics_path = flag_value(args, "--metrics").map(str::to_owned);
    let deadline = flag_value(args, "--deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "--deadline-ms expects a number of milliseconds".to_owned())
        })
        .transpose()?
        .map(std::time::Duration::from_millis);
    let fail_seed: u64 = flag_value(args, "--fail-seed")
        .map(|v| {
            v.parse()
                .map_err(|_| "--fail-seed expects a number".to_owned())
        })
        .transpose()?
        .unwrap_or(0);
    if let Some(spec) = flag_value(args, "--fail-spec") {
        relcheck::bdd::failpoint::configure_spec(spec, fail_seed)
            .map_err(|e| format!("--fail-spec: {e}"))?;
        std::panic::set_hook(Box::new(|_| {}));
    }
    let index_cache = flag_value(args, "--index-cache").map(str::to_owned);
    let socket = flag_value(args, "--socket").map(str::to_owned);
    let witness_limit = parse_witness_limit(args)?;
    let mut cfg = ServeConfig::default();
    if let Some(v) = flag_value(args, "--max-sessions") {
        cfg.max_sessions = v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or("--max-sessions expects a number >= 1")?;
    }
    if let Some(v) = flag_value(args, "--queue-depth") {
        cfg.queue_depth = v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or("--queue-depth expects a number >= 1")?;
    }
    if let Some(v) = flag_value(args, "--idle-timeout-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| "--idle-timeout-ms expects a number of milliseconds".to_owned())?;
        cfg.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = flag_value(args, "--shed-threshold-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| "--shed-threshold-ms expects a number of milliseconds".to_owned())?;
        cfg.shed_threshold = std::time::Duration::from_millis(ms);
    }
    // The watchdog ceiling tracks the shed trigger (a request 8x slower
    // than "slow" is stuck); a user-configured --deadline-ms tighter
    // than this wins inside the actor.
    cfg.hard_deadline = (cfg.shed_threshold * 8).max(std::time::Duration::from_secs(1));
    let (spec, db) = load(spec_path)?;
    if spec.constraints.is_empty() {
        return Err("spec declares no constraints".to_owned());
    }
    let opts = CheckerOptions {
        ordering,
        telemetry: metrics_path.is_some(),
        deadline,
        ..Default::default()
    };
    let mut checker = Checker::new(db, opts);
    let store = match &index_cache {
        Some(dir) => {
            let mut s =
                IndexStore::open(dir).map_err(|e| format!("opening index cache {dir}: {e}"))?;
            s.warm_start(&mut checker)
                .map_err(|e| format!("warm-starting from {dir}: {e}"))?;
            for rec in &s.stats.recoveries {
                println!(
                    "index-cache: recovered {:?} ({}): {}",
                    rec.relation, rec.reason, rec.detail
                );
            }
            println!(
                "index-cache: {} hit(s), {} miss(es), {} rebuild(s), {} journal record(s) replayed",
                s.stats.hits, s.stats.misses, s.stats.rebuilds, s.stats.journal_replayed
            );
            Some(s)
        }
        None => None,
    };
    let constraints: Vec<(String, relcheck::logic::Formula)> = spec
        .constraints
        .iter()
        .map(|c| (c.name.clone(), c.formula.clone()))
        .collect();
    let before = checker.logical_db().manager().stats();
    let (mut engine, reports) = ServeEngine::new(checker, &constraints, store)
        .map_err(|e| format!("priming the session: {e}"))?;
    engine.set_witness_limit(witness_limit);
    println!();
    for (name, report) in &reports {
        print_report_line(name, report);
    }
    println!(
        "\nserving {} constraint(s) over {} relation(s); commands: \
         +REL:v,... -REL:v,... check [name] certify [name] advise stats quit",
        reports.len(),
        engine.checker().logical_db().db().relation_names().count()
    );
    // The engine moves onto its actor thread; stdin and socket sessions
    // alike talk to it through admission-controlled client handles.
    let actor = ServeActor::spawn(engine, cfg);
    let client = actor.client();
    let served = match &socket {
        Some(path) => serve_socket(&client, path),
        None => serve_stdio(&client),
    };
    drop(client);
    let (mut engine, overload) = actor.shutdown();
    served?;
    engine
        .finish()
        .map_err(|e| format!("writing back index cache: {e}"))?;
    if let Some(path) = &metrics_path {
        let after = engine.checker().logical_db().manager().stats();
        let lane = WorkerTelemetry {
            worker: 0,
            constraints: (0..reports.len()).collect(),
            bdd: after.delta_since(&before),
            peak_nodes: after.peak_nodes,
            depth_hwm: after.depth_hwm,
        };
        let mut metrics =
            RunMetrics::from_reports(&reports, Some(FleetTelemetry::from_workers(vec![lane])), 1);
        metrics.index_cache = engine.store().map(|s| s.stats.clone());
        metrics.plan_cache = Some(engine.plan_cache_stats());
        metrics.serve = Some(engine.stats());
        metrics.audit = Some(engine.audit_stats());
        metrics.overload = Some(overload);
        metrics.policy = engine.policy_metrics();
        let doc = metrics.to_json();
        debug_assert!(validate_metrics_json(&doc).is_ok());
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    // The exit code reflects the final verdicts: any constraint whose
    // last decided verdict is "violated" makes the session non-clean.
    Ok(engine
        .registry()
        .cached()
        .values()
        .all(|v| *v != Some(false)))
}

/// Drive a serve session over stdin/stdout (the scripted-pipeline mode).
/// A single sequential client cannot overfill the queue, so replies are
/// byte-identical to the pre-actor engine loop; shed-tier requests
/// change the ladder entry rung, never the reply bytes.
fn serve_stdio(client: &ServeClient) -> Result<(), String> {
    use std::io::{BufRead, Write};
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        match client.submit(&line) {
            Submission::Reply(reply) => {
                for l in &reply.lines {
                    writeln!(out, "{l}").map_err(|e| format!("writing stdout: {e}"))?;
                }
                out.flush().map_err(|e| format!("writing stdout: {e}"))?;
                if reply.quit {
                    break;
                }
            }
            Submission::Busy { retry_after_ms } => {
                writeln!(out, "busy {retry_after_ms}")
                    .map_err(|e| format!("writing stdout: {e}"))?;
                out.flush().map_err(|e| format!("writing stdout: {e}"))?;
            }
            Submission::Closed => break,
        }
    }
    Ok(())
}

/// SIGTERM latch for graceful drain in socket mode. The handler only
/// flips an atomic (async-signal-safe); the accept loop polls it and
/// turns it into a synthetic `quit`.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RECEIVED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigterm(_signum: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    /// Install the handler (idempotent). Uses the libc `signal` symbol
    /// directly — the workspace links no libc crate.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: installing an async-signal-safe handler for a signal
        // this process owns; the handler touches only a static atomic.
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }

    /// Whether SIGTERM has arrived since `install`.
    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }
}

/// Serve over a unix socket: up to `--max-sessions` concurrent clients,
/// each on its own panic-isolated session thread feeding the shared
/// engine actor. `quit` from any client — or SIGTERM — drains the
/// session gracefully; extra connections beyond the cap get a `busy`
/// line and are closed.
#[cfg(unix)]
fn serve_socket(client: &ServeClient, path: &str) -> Result<(), String> {
    use std::io::Write;
    use std::os::unix::net::{UnixListener, UnixStream};
    // Unlink-then-bind is not atomic: probing with a connect first keeps
    // a live server's socket safe — only a dead socket (connection
    // refused) may be reclaimed.
    if std::fs::metadata(path).is_ok() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(format!(
                    "already serving: a live relcheck session owns {path}"
                ))
            }
            Err(_) => {
                std::fs::remove_file(path)
                    .map_err(|e| format!("removing stale socket {path}: {e}"))?;
            }
        }
    }
    let listener = UnixListener::bind(path).map_err(|e| format!("binding {path}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("configuring {path}: {e}"))?;
    println!("listening on {path}");
    sigterm::install();
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if client.is_draining() {
            break;
        }
        if sigterm::received() {
            // Graceful drain: the synthetic quit finishes everything
            // already admitted before the actor stops.
            let _ = client.submit("quit");
            break;
        }
        sessions.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                if sessions.len() >= client.config().max_sessions {
                    let mut stream = stream;
                    let _ = writeln!(stream, "busy 1000");
                    continue; // dropped: over the session cap
                }
                let session_client = client.clone();
                sessions.push(std::thread::spawn(move || {
                    // One poisoned session must not take down the
                    // listener or any other client.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        session_loop(&session_client, stream)
                    }));
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(format!("accepting on {path}: {e}"));
            }
        }
    }
    for h in sessions {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// How one bounded line read ended (see [`read_line_bounded`]).
#[cfg(unix)]
enum LineRead {
    /// A complete line is in the buffer.
    Line,
    /// Clean end of stream.
    Eof,
    /// The line exceeded the cap before a newline arrived.
    TooLong,
    /// Nothing arrived for the idle timeout.
    IdleTimeout,
    /// The session is draining; stop reading.
    Draining,
    /// Read error (client vanished).
    Gone,
}

/// Read one `\n`-terminated line with a hard byte cap, slicing the
/// blocking read into short timeouts so idle tracking and drain checks
/// stay responsive. The cap fires *during* the read — a slowloris
/// feeding an endless line is cut off at the cap, not buffered.
#[cfg(unix)]
fn read_line_bounded<R: std::io::BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    client: &ServeClient,
    slice: std::time::Duration,
) -> LineRead {
    use std::io::ErrorKind;
    let cfg = client.config();
    let mut idle = std::time::Duration::ZERO;
    loop {
        match reader.fill_buf() {
            Ok([]) => return LineRead::Eof,
            Ok(chunk) => {
                idle = std::time::Duration::ZERO;
                let (take, done) = match chunk.iter().position(|b| *b == b'\n') {
                    Some(pos) => (pos + 1, true),
                    None => (chunk.len(), false),
                };
                buf.extend_from_slice(&chunk[..take]);
                reader.consume(take);
                // +1 for the newline sanitize_line strips again.
                if buf.len() > cfg.max_line_bytes + 1 {
                    return LineRead::TooLong;
                }
                if done {
                    return LineRead::Line;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                idle += slice;
                if client.is_draining() {
                    return LineRead::Draining;
                }
                if idle >= cfg.idle_timeout {
                    return LineRead::IdleTimeout;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Gone,
        }
    }
}

/// One socket session: bounded reads, typed protocol errors for garbage
/// input, admission-controlled submits, and a clean goodbye on drain.
#[cfg(unix)]
fn session_loop(client: &ServeClient, stream: std::os::unix::net::UnixStream) {
    use relcheck::core_::serve::sanitize_line;
    use std::io::{BufReader, Write};
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let slice = std::time::Duration::from_millis(50);
    let _ = read_half.set_read_timeout(Some(slice));
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match read_line_bounded(&mut reader, &mut buf, client, slice) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Gone => return,
            LineRead::TooLong => {
                let _ = writeln!(
                    writer,
                    "err line exceeds {} bytes, closing",
                    client.config().max_line_bytes
                );
                return;
            }
            LineRead::IdleTimeout => {
                let _ = writeln!(writer, "err idle timeout, closing");
                return;
            }
            LineRead::Draining => {
                let _ = writeln!(writer, "err session draining, closing");
                return;
            }
        }
        let line = match sanitize_line(&buf, client.config().max_line_bytes) {
            Ok(line) => line,
            Err(e) => {
                if writeln!(writer, "err {e}").is_err() {
                    return;
                }
                continue;
            }
        };
        match client.submit(&line) {
            Submission::Reply(reply) => {
                for l in &reply.lines {
                    if writeln!(writer, "{l}").is_err() {
                        return;
                    }
                }
                if writer.flush().is_err() || reply.quit {
                    return;
                }
            }
            Submission::Busy { retry_after_ms } => {
                if writeln!(writer, "busy {retry_after_ms}").is_err() || writer.flush().is_err() {
                    return;
                }
            }
            Submission::Closed => return,
        }
    }
}

#[cfg(not(unix))]
fn serve_socket(_client: &ServeClient, _path: &str) -> Result<(), String> {
    Err("--socket is only supported on unix platforms".to_owned())
}

/// Scriptable client for a `relcheck serve --socket` session: stdin
/// lines go to the socket, replies stream to stdout. On stdin EOF the
/// write half shuts down and remaining replies drain before exit.
#[cfg(unix)]
fn cmd_connect(args: &[String]) -> Result<bool, String> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    let path = args.first().ok_or_else(usage)?;
    let stream = UnixStream::connect(path).map_err(|e| format!("connecting {path}: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cloning socket: {e}"))?;
    let printer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in BufReader::new(read_half).lines() {
            let Ok(line) = line else { break };
            if writeln!(out, "{line}").is_err() {
                break;
            }
            let _ = out.flush();
        }
    });
    let mut writer = stream;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if writeln!(writer, "{line}").is_err() {
            break; // server gone; drain what it already sent
        }
    }
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let _ = printer.join();
    Ok(true)
}

#[cfg(not(unix))]
fn cmd_connect(_args: &[String]) -> Result<bool, String> {
    Err("connect is only supported on unix platforms".to_owned())
}

/// Manage the persistent index store directly: `build`, `verify`,
/// `repair`, `gc`, `apply` (see the module docs).
fn cmd_index(args: &[String]) -> Result<bool, String> {
    let sub = args.first().ok_or_else(usage)?.as_str();
    let rest = &args[1..];
    let spec_path = rest
        .first()
        .filter(|a| !a.starts_with('-') && !a.starts_with('+'))
        .ok_or_else(usage)?;
    let dir = flag_value(rest, "--index-cache")
        .ok_or_else(|| "index: --index-cache DIR is required".to_owned())?;
    let ordering = match flag_value(rest, "--ordering") {
        Some(name) => ordering_from(name)?,
        None => OrderingStrategy::ProbConverge,
    };
    let fail_seed: u64 = flag_value(rest, "--fail-seed")
        .map(|v| {
            v.parse()
                .map_err(|_| "--fail-seed expects a number".to_owned())
        })
        .transpose()?
        .unwrap_or(0);
    if let Some(spec) = flag_value(rest, "--fail-spec") {
        relcheck::bdd::failpoint::configure_spec(spec, fail_seed)
            .map_err(|e| format!("--fail-spec: {e}"))?;
        std::panic::set_hook(Box::new(|_| {}));
    }
    let (_spec, db) = load(spec_path)?;
    match sub {
        "verify" => {
            let store =
                IndexStore::open(dir).map_err(|e| format!("opening index cache {dir}: {e}"))?;
            let mut clean = true;
            for (relation, status) in store.verify(&db, ordering) {
                println!("{relation:<24} {status}");
                if !matches!(status, VerifyStatus::Ok { .. }) {
                    clean = false;
                }
            }
            Ok(clean)
        }
        "gc" => {
            let known: Vec<String> = db.relation_names().map(str::to_owned).collect();
            let mut store =
                IndexStore::open(dir).map_err(|e| format!("opening index cache {dir}: {e}"))?;
            let removed = store.gc(&known).map_err(|e| format!("gc: {e}"))?;
            if removed.is_empty() {
                println!("index-cache: nothing to collect");
            } else {
                for f in &removed {
                    println!("removed {f}");
                }
            }
            Ok(true)
        }
        "build" | "repair" | "apply" => {
            // All three share the same durable core: (optionally) journal
            // the requested deltas, then warm-start — which adopts, replays,
            // or rebuilds every relation as needed — and persist the result.
            let mut store =
                IndexStore::open(dir).map_err(|e| format!("opening index cache {dir}: {e}"))?;
            if sub == "apply" {
                let deltas: Vec<(String, Delta)> = rest
                    .iter()
                    .filter(|a| a.starts_with('+') || (a.starts_with('-') && !a.starts_with("--")))
                    .map(|a| parse_delta(a))
                    .collect::<Result<_, _>>()?;
                if deltas.is_empty() {
                    return Err(
                        "index apply: no deltas given (+REL:v1,v2 or -REL:v1,v2)".to_owned()
                    );
                }
                for (relation, delta) in &deltas {
                    let arity = db.relation(relation).map_err(|e| e.to_string())?.arity();
                    if delta.values().len() != arity {
                        return Err(format!(
                            "delta for {relation:?} has {} value(s); the relation has arity {arity}",
                            delta.values().len()
                        ));
                    }
                    store
                        .append_delta(relation, delta)
                        .map_err(|e| format!("journaling delta for {relation:?}: {e}"))?;
                    println!(
                        "journaled {}{relation}({})",
                        if matches!(delta, Delta::Insert(_)) {
                            "+"
                        } else {
                            "-"
                        },
                        delta
                            .values()
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
            let opts = CheckerOptions {
                ordering,
                ..Default::default()
            };
            let mut checker = Checker::new(db, opts);
            store
                .warm_start(&mut checker)
                .map_err(|e| format!("warm-starting from {dir}: {e}"))?;
            store
                .write_back(&mut checker)
                .map_err(|e| format!("writing back index cache: {e}"))?;
            for rec in &store.stats.recoveries {
                println!(
                    "recovered {:?} ({}): {}",
                    rec.relation, rec.reason, rec.detail
                );
            }
            println!(
                "index-cache {dir}: {} hit(s), {} miss(es), {} rebuild(s), {} journal record(s) replayed, {} write failure(s)",
                store.stats.hits,
                store.stats.misses,
                store.stats.rebuilds,
                store.stats.journal_replayed,
                store.stats.write_failures
            );
            Ok(store.stats.write_failures == 0)
        }
        other => Err(format!("unknown index subcommand {other:?}\n{}", usage())),
    }
}

/// Validate a metrics JSON document against the documented schema, its
/// per-op conservation laws, and the fleet-total = Σ worker invariant.
fn cmd_metrics_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate_metrics_json(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: valid metrics document");
    Ok(())
}

/// Validate one or more `BENCH_*.json` benchmark-trajectory documents
/// against the BENCH schema (see DESIGN.md).
fn cmd_bench_check(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err(usage());
    }
    for path in args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        validate_bench_json(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: valid bench document");
    }
    Ok(())
}

/// Print the compiled check plan for one constraint (or, with no name
/// given, every constraint in the spec) without executing it.
fn cmd_plan(args: &[String]) -> Result<(), String> {
    let spec_path = args.first().ok_or_else(usage)?;
    let target = args.get(1).filter(|a| !a.starts_with("--"));
    let json = args.iter().any(|a| a == "--json");
    let ordering = match flag_value(args, "--ordering") {
        Some(name) => ordering_from(name)?,
        None => OrderingStrategy::ProbConverge,
    };
    // JSON mode prints exactly one machine-readable line to stdout.
    let (spec, db) = if json {
        load_quiet(spec_path)?
    } else {
        load(spec_path)?
    };
    let mut checker = Checker::new(
        db,
        CheckerOptions {
            ordering,
            ..Default::default()
        },
    );
    let selected: Vec<_> = match target {
        Some(name) => {
            let c = spec
                .constraints
                .iter()
                .find(|c| &c.name == name)
                .ok_or_else(|| format!("no constraint named {name:?} in the spec"))?;
            vec![c]
        }
        None => spec.constraints.iter().collect(),
    };
    if selected.is_empty() {
        return Err("spec declares no constraints".to_owned());
    }
    if json {
        let plans = selected
            .iter()
            .map(|c| {
                checker
                    .plan(&c.formula)
                    .map(|p| (c.name.clone(), p))
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        let doc = plans_to_json(&plans);
        validate_plan_json(&doc).map_err(|e| format!("emitted plan document invalid: {e}"))?;
        println!("{doc}");
        return Ok(());
    }
    for c in selected {
        let plan = checker.plan(&c.formula).map_err(|e| e.to_string())?;
        println!("\nconstraint {:?}: {}", c.name, c.formula);
        println!("{}", plan.render());
    }
    Ok(())
}

/// `relcheck advise`: print the workload-driven routing report. With
/// `--index-cache` the profile recorded by earlier runs in that
/// directory feeds the cost model (and the warm indexes make the BDD
/// cost honest); without one — or when no profile exists yet — a
/// one-shot in-memory recording of this invocation's own validation
/// pass stands in. Read-only: never writes the cache or the profile.
/// Everything on stdout is the report itself, byte-identical across
/// runs for a fixed recorded workload; incidental progress goes to
/// stderr.
fn cmd_advise(args: &[String]) -> Result<(), String> {
    let spec_path = args.first().ok_or_else(usage)?;
    let ordering = match flag_value(args, "--ordering") {
        Some(name) => ordering_from(name)?,
        None => OrderingStrategy::ProbConverge,
    };
    let index_cache = flag_value(args, "--index-cache").map(str::to_owned);
    let (spec, db) = load_quiet(spec_path)?;
    if spec.constraints.is_empty() {
        return Err("spec declares no constraints".to_owned());
    }
    let mut checker = Checker::new(
        db,
        CheckerOptions {
            ordering,
            ..Default::default()
        },
    );
    let mut profile = None;
    if let Some(dir) = &index_cache {
        let mut s = IndexStore::open(dir).map_err(|e| format!("opening index cache {dir}: {e}"))?;
        s.warm_start(&mut checker)
            .map_err(|e| format!("warm-starting from {dir}: {e}"))?;
        eprintln!(
            "index-cache: {} hit(s), {} miss(es), {} rebuild(s)",
            s.stats.hits, s.stats.misses, s.stats.rebuilds
        );
        profile = WorkloadProfile::load(Path::new(dir))
            .map_err(|e| format!("loading workload profile from {dir}: {e}"))?;
    }
    let constraints: Vec<(String, Formula)> = spec
        .constraints
        .iter()
        .map(|c| (c.name.clone(), c.formula.clone()))
        .collect();
    let profile = match profile {
        Some(p) => p,
        None => {
            eprintln!("no recorded profile; recording this invocation's own checks");
            let mut registry = ConstraintRegistry::new();
            for (name, f) in &constraints {
                if !registry.register(name, f.clone()) {
                    return Err(format!("duplicate constraint name {name:?}"));
                }
            }
            let reports = registry
                .validate_all(&mut checker)
                .map_err(|e| format!("checking constraints: {e}"))?;
            let mut p = WorkloadProfile::record(&checker, &constraints, &reports);
            p.note_plan_cache(registry.plan_cache_stats());
            p
        }
    };
    let advice = advise(&profile, &mut checker, &constraints);
    print!("{}", render_report(&profile, &advice));
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let spec_path = args.first().ok_or_else(usage)?;
    let target = args.get(1).ok_or_else(usage)?;
    let (spec, db) = load(spec_path)?;
    let c = spec
        .constraints
        .iter()
        .find(|c| &c.name == target)
        .ok_or_else(|| format!("no constraint named {target:?} in the spec"))?;
    let mut checker = Checker::new(db, CheckerOptions::default());
    let e = checker.explain(&c.formula).map_err(|e| e.to_string())?;
    println!("\nconstraint {:?}: {}", c.name, c.formula);
    println!("{e}");
    Ok(())
}
