#![warn(missing_docs)]

//! # relcheck — fast identification of relational constraint violations
//!
//! A from-scratch Rust reproduction of *"Fast Identification of Relational
//! Constraint Violations"* (Chandel, Koudas, Pu, Srivastava — ICDE 2007):
//! user-defined first-order constraints are validated against **BDD logical
//! indices** built over relational tables, so that the set of violated
//! constraints is identified fast — and only then are the offending tuples
//! materialized through SQL-style plans.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`bdd`] — the ROBDD engine with finite-domain blocks (the BuDDy
//!   substrate, rebuilt);
//! * [`relstore`] — dictionary-encoded relations, relational algebra, the
//!   SQL-baseline plan executor, and the information-theoretic statistics;
//! * [`datagen`] — the paper's synthetic workloads (k-PROD families, the
//!   customer database, the curriculum schema);
//! * [`logic`] — the constraint language: AST, parser, sort inference, the
//!   Section 4 rewrite rules, and a brute-force semantics oracle;
//! * [`core_`] — variable-ordering heuristics, logical indices, and the
//!   [`core_::checker::Checker`] that ties everything together.
//!
//! ## Quick start
//!
//! ```
//! use relcheck::core_::checker::{Checker, CheckerOptions};
//! use relcheck::logic::parse;
//! use relcheck::relstore::{Database, Raw};
//!
//! let mut db = Database::new();
//! db.create_relation(
//!     "PHONES",
//!     &[("city", "city"), ("areacode", "areacode")],
//!     vec![
//!         vec![Raw::str("Toronto"), Raw::Int(416)],
//!         vec![Raw::str("Toronto"), Raw::Int(212)], // violation
//!     ],
//! ).unwrap();
//! let mut checker = Checker::new(db, CheckerOptions::default());
//! let c = parse(r#"forall c, a. PHONES(c, a) & c = "Toronto" -> a in {416, 647}"#).unwrap();
//! assert!(!checker.check(&c).unwrap().holds);
//! let (tuples, _) = checker.find_violations(&c).unwrap();
//! assert_eq!(tuples.len(), 1);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

pub mod spec;

pub use relcheck_bdd as bdd;
/// The system core (named `core_` to avoid clashing with Rust's `core`).
pub use relcheck_core as core_;
pub use relcheck_datagen as datagen;
pub use relcheck_logic as logic;
pub use relcheck_relstore as relstore;
