//! Data-quality audit of a (synthetic) customer database — the paper's
//! motivating scenario at realistic scale.
//!
//! Generates a customer population with injected state-scrambling errors,
//! registers a battery of constraints, identifies the violated ones fast on
//! the BDD indices, then drills into the offending tuples and repairs them
//! through the incrementally-maintained index.
//!
//! Run with `cargo run --release --example customer_audit`.

use relcheck::core_::checker::{Checker, CheckerOptions};
use relcheck::datagen::customer::{col, generate, CustomerConfig};
use relcheck::logic::parse;
use relcheck::relstore::{Database, Relation, Schema};
use std::time::Instant;

fn main() {
    // ~50k customers, 1% of rows with a scrambled state — enough to break
    // both the city→state dependency and areacode/state consistency.
    let data = generate(&CustomerConfig {
        rows: 50_000,
        dom_sizes: [60, 100, 800, 30, 1200],
        violation_rate: 0.01,
        seed: 2024,
    });
    let mut db = Database::new();
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    // Index the paper's `ncs` projection: (areacode, city, state).
    let ncs = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation
            .rows()
            .map(|r| vec![r[col::AREACODE], r[col::CITY], r[col::STATE]]),
    )
    .unwrap();
    db.insert_relation("CUST", ncs).unwrap();
    // The reference mapping city → state from a trusted source (the model).
    let cs: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();

    let mut checker = Checker::new(db, CheckerOptions::default());
    let constraints = vec![
        (
            "city-matches-reference".to_owned(),
            parse("forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2").unwrap(),
        ),
        (
            "city-determines-state".to_owned(),
            parse("forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2")
                .unwrap(),
        ),
        (
            "every-city-served".to_owned(),
            parse("forall c, s2. CITY_STATE(c, s2) -> exists a, s. CUST(a, c, s)").unwrap(),
        ),
    ];

    println!("== identification pass (BDD logical indices) ==");
    let t0 = Instant::now();
    let reports = checker.check_all(&constraints).unwrap();
    for (name, r) in &reports {
        println!(
            "  {name:<26} {:<9} via {:?} in {:.2?}",
            if r.holds { "ok" } else { "VIOLATED" },
            r.method,
            r.elapsed
        );
    }
    println!("  total: {:.2?}", t0.elapsed());

    // Drill into the reference-mismatch violations and repair them.
    let bad = &constraints[0].1;
    let (rows, cols) = checker.find_violations(bad).unwrap();
    // Output columns are the constraint's variables; find ours by name.
    let idx = |name: &str| {
        cols.iter()
            .position(|c| c == name)
            .expect("constraint variable")
    };
    let (ia, ic, is) = (idx("a"), idx("c"), idx("s"));
    println!("\n== violating tuples: {} ==", rows.len());
    for i in 0..rows.len().min(5) {
        let d = checker.logical_db().db().decode_row(&rows, &rows.row(i));
        println!(
            "  areacode={} city={} state={} (reference disagrees)",
            d[ia], d[ic], d[is]
        );
    }
    if rows.len() > 5 {
        println!("  … and {} more", rows.len() - 5);
    }

    println!("\n== repair through the incrementally-maintained index ==");
    let t0 = Instant::now();
    let fixes: Vec<(Vec<u32>, Vec<u32>)> = (0..rows.len())
        .map(|i| {
            let r = rows.row(i);
            // Repair: set the state to the reference mapping's value. The
            // CUST schema order is (areacode, city, state).
            let bad_row = vec![r[ia], r[ic], r[is]];
            let fixed = vec![r[ia], r[ic], data.city_state[r[ic] as usize]];
            (bad_row, fixed)
        })
        .collect();
    for (bad_row, fixed_row) in &fixes {
        checker
            .logical_db_mut()
            .delete_tuple("CUST", bad_row)
            .unwrap();
        checker
            .logical_db_mut()
            .insert_tuple("CUST", fixed_row)
            .unwrap();
    }
    println!(
        "  applied {} delete+insert pairs in {:.2?}",
        fixes.len(),
        t0.elapsed()
    );

    println!("\n== re-validation ==");
    let reports = checker.check_all(&constraints).unwrap();
    for (name, r) in &reports {
        println!(
            "  {name:<26} {:<9} via {:?} in {:.2?}",
            if r.holds { "ok" } else { "VIOLATED" },
            r.method,
            r.elapsed
        );
    }
    assert!(
        reports.iter().all(|(_, r)| r.holds),
        "the repair must clear every constraint"
    );
    println!("\nall constraints hold after repair");
}
