//! Quickstart: declare a database, check constraints, inspect violations.
//!
//! Run with `cargo run --release --example quickstart`.

use relcheck::core_::checker::{Checker, CheckerOptions};
use relcheck::logic::parse;
use relcheck::relstore::{Database, Raw};

fn main() {
    // 1. A database: phone customers with a data-quality problem.
    let mut db = Database::new();
    db.create_relation(
        "CUSTOMERS",
        &[
            ("city", "city"),
            ("areacode", "areacode"),
            ("state", "state"),
        ],
        vec![
            vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
            vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
            vec![Raw::str("Toronto"), Raw::Int(212), Raw::str("ON")], // bad prefix!
            vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
            vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
        ],
    )
    .expect("fresh database");

    // 2. A checker. It builds BDD logical indices lazily, using the
    //    Prob-Converge variable ordering, with a 10^6-node budget and SQL
    //    fallback — the configuration the paper evaluates.
    let mut checker = Checker::new(db, CheckerOptions::default());

    // 3. Constraints in first-order logic. The paper's running example:
    //    Toronto numbers must use Toronto prefixes.
    let constraints = vec![
        (
            "toronto-prefixes".to_owned(),
            parse(
                r#"forall c, a, s.
                     CUSTOMERS(c, a, s) & c = "Toronto" -> a in {416, 647, 905}"#,
            )
            .unwrap(),
        ),
        (
            "city-determines-state".to_owned(),
            parse(
                r#"forall c, a1, s1, a2, s2.
                     CUSTOMERS(c, a1, s1) & CUSTOMERS(c, a2, s2) -> s1 = s2"#,
            )
            .unwrap(),
        ),
    ];

    // 4. Fast identification: which constraints are violated?
    let reports = checker
        .check_all(&constraints)
        .expect("well-formed constraints");
    for (name, report) in &reports {
        println!(
            "{name:<24} {} ({:?}, {:.2?})",
            if report.holds { "OK" } else { "VIOLATED" },
            report.method,
            report.elapsed
        );
    }

    // 5. Only now pay for the expensive part: the offending tuples.
    for (name, report) in &reports {
        if report.holds {
            continue;
        }
        let f = &constraints.iter().find(|(n, _)| n == name).unwrap().1;
        let (rows, _cols) = checker.find_violations(f).expect("translatable");
        println!("\nviolating tuples of {name}:");
        for i in 0..rows.len() {
            let decoded = checker.logical_db().db().decode_row(&rows, &rows.row(i));
            println!(
                "  ({})",
                decoded
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
}
