//! The paper's introduction example, end to end: *"all students in the CS
//! department must take some course in the Programming area"* (Formula 1),
//! checked first on the BDD logical indices and cross-checked against the
//! paper's SQL formulation.
//!
//! Run with `cargo run --release --example curriculum`.

use relcheck::core_::checker::{Checker, CheckerOptions, Method};
use relcheck::datagen::curriculum::{populate, CurriculumConfig};
use relcheck::logic::parse;
use relcheck::relstore::plan::{execute, Plan};
use relcheck::relstore::{Database, Raw};

fn main() {
    let mut db = Database::new();
    let injected = populate(
        &mut db,
        &CurriculumConfig {
            students: 5_000,
            courses: 300,
            violating_students: 4,
            ..Default::default()
        },
    );
    println!(
        "curriculum database: {} students, {} courses, {} enrollments ({} injected violators)",
        db.relation("STUDENT").unwrap().len(),
        db.relation("COURSE").unwrap().len(),
        db.relation("TAKES").unwrap().len(),
        injected.len(),
    );

    // Formula 1 of the paper.
    let policy = parse(
        r#"forall s, z. STUDENT(s, "CS", z) ->
             exists k. (COURSE(k, "Programming") & TAKES(s, k))"#,
    )
    .unwrap();

    // BDD identification.
    let mut checker = Checker::new(db, CheckerOptions::default());
    let report = checker.check(&policy).unwrap();
    println!(
        "\nBDD check: policy {} (method {:?}, {:.2?})",
        if report.holds { "HOLDS" } else { "VIOLATED" },
        report.method,
        report.elapsed
    );
    assert_eq!(report.method, Method::Bdd);
    assert!(!report.holds);

    // The paper's SQL query for the violating tuples (Section 1), spelled
    // as a relational plan: CS students with no Programming course.
    let sql = Plan::scan("STUDENT")
        .select_eq(1, Raw::str("CS"))
        .project(vec![0])
        .anti_join(
            Plan::scan("TAKES")
                .join(
                    Plan::scan("COURSE").select_eq(1, Raw::str("Programming")),
                    vec![(1, 0)],
                )
                .project(vec![0]),
            vec![(0, 0)],
        );
    let via_sql = execute(checker.logical_db().db(), &sql).unwrap();
    println!("SQL violation query returns {} students", via_sql.len());

    // The checker's own drill-down must agree with both the SQL query and
    // the generator's injected violators.
    let (rows, _) = checker.find_violations(&policy).unwrap();
    println!("checker drill-down returns {} students", rows.len());
    assert_eq!(via_sql.len(), injected.len());
    assert_eq!(rows.len(), injected.len());

    let mut ids: Vec<i64> = (0..rows.len())
        .map(
            |i| match checker.logical_db().db().decode_row(&rows, &rows.row(i))[0] {
                Raw::Int(id) => id,
                ref other => panic!("student_id should be an int, got {other}"),
            },
        )
        .collect();
    ids.sort_unstable();
    let mut expected = injected.clone();
    expected.sort_unstable();
    assert_eq!(ids, expected, "exactly the injected violators are found");
    println!("\nviolating students: {ids:?} — matches the injected set");
}
