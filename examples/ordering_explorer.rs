//! Explore how the attribute ordering changes the logical index.
//!
//! Generates a product-structured relation (where ordering matters most),
//! evaluates every permutation exhaustively, and shows where the paper's
//! heuristics land — a miniature of the Figure 2/3 experiments, as a
//! library-usage demo.
//!
//! Run with `cargo run --release --example ordering_explorer`.

use relcheck::core_::ordering::{
    all_orderings, bdd_size_for_ordering, max_inf_gain, min_cond_entropy, optimal_ordering,
    prob_converge, random_order, sift_ordering,
};
use relcheck::datagen::gen_kprod;

fn main() {
    // A 1-PROD relation: 5 attributes, |dom| ≤ 100, 30k tuples.
    let g = gen_kprod(5, 100, 30_000, 1, 7);
    println!(
        "relation: {} tuples, attribute domains {:?}\n",
        g.relation.len(),
        g.dom_sizes
    );

    // Exhaustive landscape.
    let mut sizes: Vec<(Vec<usize>, usize)> = all_orderings(5)
        .into_iter()
        .map(|o| {
            let s = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &o).unwrap();
            (o, s)
        })
        .collect();
    sizes.sort_by_key(|&(_, s)| s);
    let (best, best_size) = sizes.first().cloned().unwrap();
    let (worst, worst_size) = sizes.last().cloned().unwrap();
    println!("orderings evaluated: {}", sizes.len());
    println!("best : {best:?} -> {best_size} nodes");
    println!("worst: {worst:?} -> {worst_size} nodes");
    println!("spread: {:.1}x\n", worst_size as f64 / best_size as f64);

    // Where the heuristics land.
    let (opt_order, opt_size) = optimal_ordering(&g.relation, &g.dom_sizes).unwrap();
    let rank_of = |order: &[usize]| sizes.iter().position(|(o, _)| o == order).unwrap();
    println!(
        "{:<22} {:>10} {:>8} {:>6}",
        "strategy", "ordering", "nodes", "rank"
    );
    let pc = prob_converge(&g.relation, &g.dom_sizes);
    let (sifted, _) = sift_ordering(&g.relation, &g.dom_sizes, &pc).unwrap();
    for (name, order) in [
        ("optimal (exhaustive)", opt_order.clone()),
        ("Prob-Converge", pc.clone()),
        ("PC + sifting (ours)", sifted),
        ("MaxInf-Gain (Fig 1)", max_inf_gain(&g.relation)),
        ("MinCondEntropy (ours)", min_cond_entropy(&g.relation)),
        ("random (seed 5)", random_order(5, 5)),
    ] {
        let s = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &order).unwrap();
        println!(
            "{:<22} {:>10} {:>8} {:>6}",
            name,
            format!("{order:?}"),
            s,
            format!("#{}", rank_of(&order))
        );
    }
    println!("\noptimal size {opt_size}; the paper recommends Prob-Converge (near-optimal");
    println!("on structured relations, harmless on random ones).");
}
