//! Referential integrity on an order-management schema, with the
//! dependency-driven [`ConstraintRegistry`]: validate once, then after
//! each batch of updates re-check only the constraints that could have
//! been affected — the paper's dynamic-database workflow.
//!
//! Run with `cargo run --release --example orders_registry`.

use relcheck::core_::checker::{Checker, CheckerOptions};
use relcheck::core_::registry::{ConstraintRegistry, Verdict};
use relcheck::logic::parse;
use relcheck::relstore::{Database, Raw};

fn main() {
    // CUSTOMERS(cust_id, region), ORDERS(order_id, cust_id, status),
    // LINEITEMS(order_id, product, qty_class)
    let mut db = Database::new();
    let customers: Vec<Vec<Raw>> = (0..200)
        .map(|c| vec![Raw::Int(c), Raw::str(["EU", "NA", "APAC"][c as usize % 3])])
        .collect();
    db.create_relation(
        "CUSTOMERS",
        &[("cust_id", "cust"), ("region", "region")],
        customers,
    )
    .unwrap();
    let orders: Vec<Vec<Raw>> = (0..1_000)
        .map(|o| {
            vec![
                Raw::Int(o),
                Raw::Int(o % 200),
                Raw::str(["open", "shipped", "billed"][o as usize % 3]),
            ]
        })
        .collect();
    db.create_relation(
        "ORDERS",
        &[
            ("order_id", "order"),
            ("cust_id", "cust"),
            ("status", "status"),
        ],
        orders,
    )
    .unwrap();
    let lineitems: Vec<Vec<Raw>> = (0..3_000)
        .map(|l| {
            vec![
                Raw::Int(l % 1_000),
                Raw::Int(l % 37),
                Raw::str(["small", "bulk"][l as usize % 2]),
            ]
        })
        .collect();
    db.create_relation(
        "LINEITEMS",
        &[
            ("order_id", "order"),
            ("product", "product"),
            ("qty_class", "qty"),
        ],
        lineitems,
    )
    .unwrap();

    let mut checker = Checker::new(db, CheckerOptions::default());
    let mut registry = ConstraintRegistry::new();
    registry.register(
        "orders-have-customers",
        parse("forall o, c, s. ORDERS(o, c, s) -> exists r. CUSTOMERS(c, r)").unwrap(),
    );
    registry.register(
        "lineitems-have-orders",
        parse("forall o, p, q. LINEITEMS(o, p, q) -> exists c, s. ORDERS(o, c, s)").unwrap(),
    );
    registry.register(
        "every-order-has-items",
        parse("forall o, c, s. ORDERS(o, c, s) -> exists p, q. LINEITEMS(o, p, q)").unwrap(),
    );
    registry.register(
        "order-status-unique",
        parse("forall o, c1, s1, c2, s2. ORDERS(o, c1, s1) & ORDERS(o, c2, s2) -> s1 = s2")
            .unwrap(),
    );
    registry.register(
        "customers-in-known-regions",
        parse(r#"forall c, r. CUSTOMERS(c, r) -> r in {"EU", "NA", "APAC"}"#).unwrap(),
    );

    println!("== initial validation ==");
    for (name, report) in registry.validate_all(&mut checker).unwrap() {
        println!(
            "  {name:<28} {:<9} via {:?} in {:.2?}",
            if report.holds { "ok" } else { "VIOLATED" },
            report.method,
            report.elapsed
        );
    }

    // A batch of updates touches only ORDERS: deleting order 999 orphans
    // its line items (breaking lineitems-have-orders) while everything
    // that doesn't read ORDERS keeps its cached verdict.
    println!("\n== update batch: delete order 999 from ORDERS ==");
    let order = checker
        .logical_db()
        .db()
        .code("order", &Raw::Int(999))
        .unwrap();
    let cust = checker
        .logical_db()
        .db()
        .code("cust", &Raw::Int(999 % 200))
        .unwrap();
    let status = checker
        .logical_db()
        .db()
        .code("status", &Raw::str("open"))
        .unwrap(); // 999 % 3 == 0
    assert!(checker
        .logical_db_mut()
        .delete_tuple("ORDERS", &[order, cust, status])
        .unwrap());

    println!("== re-validation (only ORDERS-dependent constraints re-checked) ==");
    let verdicts = registry.revalidate(&mut checker, &["ORDERS"]).unwrap();
    for (name, v) in &verdicts {
        let tag = match v {
            Verdict::Checked { .. } => "re-checked",
            Verdict::Cached { .. } => "cached   ",
        };
        println!(
            "  {name:<28} {:<9} [{tag}]",
            if v.holds() { "ok" } else { "VIOLATED" }
        );
    }
    let cached = verdicts
        .iter()
        .filter(|(_, v)| matches!(v, Verdict::Cached { .. }))
        .count();
    println!(
        "\n{} of {} constraints served from cache (they don't read ORDERS)",
        cached,
        verdicts.len()
    );
    assert_eq!(
        cached, 1,
        "only the CUSTOMERS-only constraint avoids re-checking"
    );
    let broken: Vec<&str> = verdicts
        .iter()
        .filter(|(_, v)| !v.holds())
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(broken, vec!["lineitems-have-orders"]);
    println!("exactly the expected constraint broke: {broken:?}");
}
